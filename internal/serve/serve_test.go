package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"kncube/internal/core"
	"kncube/internal/experiments"
	"kncube/internal/fixpoint"
	"kncube/internal/telemetry"
)

// figureRequest is the Figure-1 h=20% operating point used throughout:
// 16x16 torus, 2 virtual channels, 32-flit messages, second load point of
// the published sweep.
func figureRequest() SolveRequest {
	return SolveRequest{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.00015}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", path, strings.NewReader(string(raw))))
	return rr
}

func getPath(h http.Handler, path string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

func decodeBody[T any](t *testing.T, rr *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", rr.Body.String(), err)
	}
	return v
}

// TestSolveMatchesCoreBitForBit: the API answer for the Figure-1 h=20%
// point is the same float64, bit for bit, as a direct core.Solve — the
// service layer adds transport, never arithmetic. The repeat request must
// be served from the cache.
func TestSolveMatchesCoreBitForBit(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	rr := postJSON(t, h, "/v1/solve", figureRequest())
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body.String())
	}
	resp := decodeBody[SolveResponse](t, rr)
	if resp.Cache != cacheMiss || resp.Result == nil {
		t.Fatalf("first solve: cache=%q result=%v, want a miss with a result", resp.Cache, resp.Result)
	}

	spec := core.Spec{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.00015}
	want, err := core.Solve(experiments.DefaultModel, spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cmp := range []struct {
		name      string
		got, want float64
	}{
		{"latency", resp.Result.Latency, want.Latency},
		{"regular", resp.Result.Regular, want.Regular},
		{"hot", resp.Result.Hot, want.Hot},
		{"source_wait", resp.Result.SourceWait, want.SourceWait},
		{"vbar", resp.Result.VBar, want.VBar},
	} {
		if math.Float64bits(cmp.got) != math.Float64bits(cmp.want) {
			t.Errorf("%s = %v over the API, %v from core.Solve — not bit-identical", cmp.name, cmp.got, cmp.want)
		}
	}
	if resp.Result.Iterations != want.Convergence.Iterations {
		t.Errorf("iterations = %d, want %d", resp.Result.Iterations, want.Convergence.Iterations)
	}

	again := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", figureRequest()))
	if again.Cache != cacheHit {
		t.Errorf("repeat request: cache=%q, want hit", again.Cache)
	}
	if math.Float64bits(again.Result.Latency) != math.Float64bits(want.Latency) {
		t.Errorf("cached latency %v differs from solved %v", again.Result.Latency, want.Latency)
	}
	if hits := s.Registry().Counter("khs_serve_cache_hits_total", "", nil).Value(); hits != 1 {
		t.Errorf("khs_serve_cache_hits_total = %d, want 1", hits)
	}
}

// TestSolveAcceleration pins the acceleration options end to end:
// "none" is bit-identical to the default (and shares its cache entry),
// "anderson" reproduces the library's accelerated solve — same answer
// within tolerance, same iteration count in the convergence metadata —
// and each acceleration setting keys its own cache entry.
func TestSolveAcceleration(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	spec := core.Spec{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.00015}

	base := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", figureRequest()))
	if base.Result == nil {
		t.Fatalf("baseline solve failed: %+v", base)
	}

	// Explicit "none" must not just match bit for bit — it must hit the
	// very cache entry the default solve populated, proving the key does
	// not distinguish them.
	req := figureRequest()
	req.Options = &SolveOptions{Acceleration: "none"}
	none := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", req))
	if none.Cache != cacheHit {
		t.Errorf(`acceleration "none": cache=%q, want hit on the default entry`, none.Cache)
	}
	if math.Float64bits(none.Result.Latency) != math.Float64bits(base.Result.Latency) {
		t.Errorf(`acceleration "none" latency %v is not bit-identical to default %v`,
			none.Result.Latency, base.Result.Latency)
	}

	// Anderson: distinct cache entry, answer matches a direct accelerated
	// core.Solve, and the convergence metadata reflects the accelerated
	// trajectory rather than the damped one.
	req.Options = &SolveOptions{Acceleration: "anderson", AndersonWindow: 4}
	and := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", req))
	if and.Cache != cacheMiss || and.Result == nil {
		t.Fatalf("anderson solve: cache=%q result=%v, want a fresh miss", and.Cache, and.Result)
	}
	opts := core.Options{}
	opts.FixPoint.Acceleration = fixpoint.AccelAnderson
	opts.FixPoint.Window = 4
	want, err := core.Solve(experiments.DefaultModel, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(and.Result.Latency-want.Latency) > 1e-9 {
		t.Errorf("anderson latency %v differs from core.Solve %v by more than 1e-9",
			and.Result.Latency, want.Latency)
	}
	if and.Result.Iterations != want.Convergence.Iterations {
		t.Errorf("anderson iterations = %d over the API, %d from core.Solve",
			and.Result.Iterations, want.Convergence.Iterations)
	}
	if math.Abs(and.Result.Latency-base.Result.Latency) > 1e-6 {
		t.Errorf("anderson latency %v and damped latency %v disagree beyond tolerance — not the same fixed point",
			and.Result.Latency, base.Result.Latency)
	}

	again := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", req))
	if again.Cache != cacheHit {
		t.Errorf("repeated anderson solve: cache=%q, want hit", again.Cache)
	}

	// A different window is a different solve: it must not collide with
	// the window-4 entry.
	req.Options = &SolveOptions{Acceleration: "anderson", AndersonWindow: 2}
	other := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", req))
	if other.Cache != cacheMiss {
		t.Errorf("window-2 anderson solve: cache=%q, want miss (own cache key)", other.Cache)
	}
}

// TestSolveValidationIsStructured: every class of bad request comes back
// as a 400 naming the offending field — never a plain 500.
func TestSolveValidationIsStructured(t *testing.T) {
	h := New(Config{}).Handler()
	cases := []struct {
		name  string
		body  any
		field string
	}{
		{"radix too small", SolveRequest{K: 1, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}, "k"},
		{"no virtual channels", SolveRequest{K: 16, V: 0, Lm: 32, H: 0.2, Lambda: 1e-4}, "v"},
		{"negative hot-spot fraction", SolveRequest{K: 16, V: 2, Lm: 32, H: -0.1, Lambda: 1e-4}, "h"},
		{"negative load", SolveRequest{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: -1}, "lambda"},
		{"unknown model", SolveRequest{Model: "no-such-model", K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}, "model"},
		{"wrong dims for 2d variant", SolveRequest{K: 16, Dims: 3, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}, "dims"},
		{"unknown entrance option", SolveRequest{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4,
			Options: &SolveOptions{Entrance: "psychic"}}, "options.entrance"},
		{"unknown blocking option", SolveRequest{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4,
			Options: &SolveOptions{Blocking: "none"}}, "options.blocking"},
		{"negative timeout", SolveRequest{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4, TimeoutMS: -5}, "timeout_ms"},
		{"unknown acceleration", SolveRequest{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4,
			Options: &SolveOptions{Acceleration: "psychic"}}, "options.acceleration"},
		{"negative anderson window", SolveRequest{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4,
			Options: &SolveOptions{Acceleration: "anderson", AndersonWindow: -1}}, "options.anderson_window"},
		{"window without anderson", SolveRequest{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4,
			Options: &SolveOptions{AndersonWindow: 3}}, "options.anderson_window"},
		{"unknown json field", map[string]any{"k": 16, "v": 2, "lm": 32, "h": 0.2, "lambda": 1e-4, "kk": 1}, "body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := postJSON(t, h, "/v1/solve", tc.body)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s, want 400", rr.Code, rr.Body.String())
			}
			resp := decodeBody[ErrorResponse](t, rr)
			if len(resp.Fields) == 0 {
				t.Fatalf("400 with no field issues: %s", rr.Body.String())
			}
			if resp.Fields[0].Field != tc.field {
				t.Errorf("field = %q, want %q (reason: %s)", resp.Fields[0].Field, tc.field, resp.Fields[0].Reason)
			}
			if resp.Error == "" || resp.Fields[0].Reason == "" {
				t.Errorf("empty error text in %s", rr.Body.String())
			}
		})
	}
}

// TestSolveSaturatedIs200: past the saturation load the model's answer is
// "no finite latency" — a 200 with Saturated set, cacheable like any other
// deterministic outcome.
func TestSolveSaturatedIs200(t *testing.T) {
	h := New(Config{}).Handler()
	req := figureRequest()
	req.Lambda = 0.01 // far beyond channel capacity
	rr := postJSON(t, h, "/v1/solve", req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s, want 200", rr.Code, rr.Body.String())
	}
	resp := decodeBody[SolveResponse](t, rr)
	if !resp.Saturated || resp.Result != nil || resp.Detail == "" {
		t.Errorf("saturated solve: %+v, want Saturated with Detail and no Result", resp)
	}
	again := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", req))
	if again.Cache != cacheHit || !again.Saturated {
		t.Errorf("repeat saturated solve: cache=%q saturated=%v, want a hit", again.Cache, again.Saturated)
	}
}

// TestSolveDeadlineBecomes504: an already-expired request deadline is
// noticed inside the fixed-point iteration and surfaces as 504, not as a
// saturation verdict or a 500.
func TestSolveDeadlineBecomes504(t *testing.T) {
	s := New(Config{RequestTimeout: time.Nanosecond})
	rr := postJSON(t, s.Handler(), "/v1/solve", figureRequest())
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s, want 504", rr.Code, rr.Body.String())
	}
	resp := decodeBody[ErrorResponse](t, rr)
	if !strings.Contains(resp.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", resp.Error)
	}
	if n := s.Registry().Counter("khs_serve_solves_total", "",
		telemetry.Labels{"model": experiments.DefaultModel, "outcome": "cancelled"}).Value(); n != 1 {
		t.Errorf("cancelled-outcome counter = %d, want 1", n)
	}
	// The expired solve must not have entered the cache.
	if n := s.cache.len(); n != 0 {
		t.Errorf("cache holds %d entries after a cancelled solve, want 0", n)
	}
}

// TestSolveShedsWhenSaturatedWithWork: with every admission slot held, the
// next solve is shed immediately with 429 — load is refused, not queued.
func TestSolveShedsWhenSaturatedWithWork(t *testing.T) {
	s := New(Config{MaxInflight: 2})
	s.slots <- struct{}{} // occupy both slots, as two stuck solves would
	s.slots <- struct{}{}
	rr := postJSON(t, s.Handler(), "/v1/solve", figureRequest())
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s, want 429", rr.Code, rr.Body.String())
	}
	if n := s.Registry().Counter("khs_serve_shed_total", "",
		telemetry.Labels{"reason": "inflight-cap"}).Value(); n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}
	<-s.slots // free a slot: service resumes
	<-s.slots
	if rr := postJSON(t, s.Handler(), "/v1/solve", figureRequest()); rr.Code != http.StatusOK {
		t.Errorf("after slots freed: status %d, want 200", rr.Code)
	}
}

// TestShutdownDrains: after Shutdown, health turns 503, and new solves and
// sweep submissions are refused with 503 while status reads keep working.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	if rr := getPath(h, "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", rr.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown with no jobs: %v", err)
	}
	if rr := getPath(h, "/healthz"); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", rr.Code)
	}
	if rr := postJSON(t, h, "/v1/solve", figureRequest()); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("solve while draining: %d, want 503", rr.Code)
	}
	if rr := postJSON(t, h, "/v1/sweeps", SweepRequest{Panel: "fig1-h20"}); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("sweep submission while draining: %d, want 503", rr.Code)
	}
}

// TestMetricsEndpoint: GET /metrics exposes the khs_serve_* set in
// Prometheus text format, including the cache counters the acceptance
// criteria key on.
func TestMetricsEndpoint(t *testing.T) {
	h := New(Config{}).Handler()
	postJSON(t, h, "/v1/solve", figureRequest())
	postJSON(t, h, "/v1/solve", figureRequest())
	rr := getPath(h, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"khs_serve_cache_hits_total 1",
		"khs_serve_cache_misses_total 1",
		`khs_serve_requests_total{code="200",route="POST /v1/solve"} 2`,
		"khs_serve_request_seconds_count",
		"khs_serve_solve_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestSweepValidation: sweep submissions with bad parameters come back as
// structured 400s.
func TestSweepValidation(t *testing.T) {
	h := New(Config{}).Handler()
	cases := []struct {
		name  string
		body  any
		field string
	}{
		{"missing panel", SweepRequest{}, "panel"},
		{"unknown panel", SweepRequest{Panel: "fig9-h99"}, "panel"},
		{"unknown model", SweepRequest{Panel: "fig1-h20", Model: "no-such-model"}, "model"},
		{"negative points", SweepRequest{Panel: "fig1-h20", Points: -1}, "points"},
		{"unknown json field", map[string]any{"panel": "fig1-h20", "pannel": true}, "body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := postJSON(t, h, "/v1/sweeps", tc.body)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s, want 400", rr.Code, rr.Body.String())
			}
			resp := decodeBody[ErrorResponse](t, rr)
			if len(resp.Fields) == 0 || resp.Fields[0].Field != tc.field {
				t.Errorf("fields = %+v, want first field %q", resp.Fields, tc.field)
			}
		})
	}
	if rr := getPath(h, "/v1/sweeps/sweep-999999"); rr.Code != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", rr.Code)
	}
}

// waitJob blocks until the job goroutine has finished (white-box: the
// finished channel closes exactly once) and returns the final status.
func waitJob(t *testing.T, s *Server, h http.Handler, id string) SweepStatus {
	t.Helper()
	j, ok := s.jobs.get(id)
	if !ok {
		t.Fatalf("job %q not in store", id)
	}
	select {
	case <-j.finished:
	case <-time.After(120 * time.Second):
		t.Fatalf("job %q did not finish", id)
	}
	rr := getPath(h, "/v1/sweeps/"+id)
	if rr.Code != http.StatusOK {
		t.Fatalf("status fetch: %d", rr.Code)
	}
	return decodeBody[SweepStatus](t, rr)
}

// TestSweepJobReproducesCanonicalCSV is the end-to-end sweep contract: an
// async job over the first two points of the fig1-h20 panel renders — via
// the same WriteCSV the figure harness uses — exactly the first two rows of
// the published results/fig1-h20.csv. Seeds derive per point, so the
// truncated sweep is a strict prefix of the canonical one.
func TestSweepJobReproducesCanonicalCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~1s of simulation (more under -race)")
	}
	s := New(Config{})
	h := s.Handler()

	rr := postJSON(t, h, "/v1/sweeps", SweepRequest{Panel: "fig1-h20", Points: 2})
	if rr.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %s, want 202", rr.Code, rr.Body.String())
	}
	st := decodeBody[SweepStatus](t, rr)
	if loc := rr.Header().Get("Location"); loc != "/v1/sweeps/"+st.ID {
		t.Errorf("Location = %q, want /v1/sweeps/%s", loc, st.ID)
	}
	if st.State != JobRunning && st.State != JobDone {
		t.Errorf("submission state = %q", st.State)
	}

	final := waitJob(t, s, h, st.ID)
	if final.State != JobDone || final.Done != final.Total || final.Total != 2 {
		t.Fatalf("final status %+v, want done 2/2", final)
	}

	pts := make([]experiments.Point, 0, len(final.Points))
	for _, sp := range final.Points {
		pt := experiments.Point{
			Lambda:         sp.Lambda,
			Model:          math.NaN(),
			ModelSaturated: sp.ModelSaturated,
			Sim:            sp.Sim,
			SimCI:          sp.SimCI,
			SimSaturated:   sp.SimSaturated,
			SimMeasured:    sp.SimMeasured,
		}
		if sp.Model != nil {
			pt.Model = *sp.Model
		}
		pts = append(pts, pt)
	}
	var got strings.Builder
	if err := experiments.WriteCSV(&got, pts); err != nil {
		t.Fatal(err)
	}

	canon, err := os.ReadFile("../../results/fig1-h20.csv")
	if err != nil {
		t.Fatal(err)
	}
	canonLines := strings.Split(strings.TrimSpace(string(canon)), "\n")
	want := strings.Join(canonLines[:3], "\n") + "\n" // header + first two points
	if got.String() != want {
		t.Errorf("sweep output is not a prefix of the canonical CSV:\ngot:\n%swant:\n%s", got.String(), want)
	}
}

// TestSweepCancellation: DELETE on a running job cancels it promptly; the
// terminal state is "cancelled", not "failed".
func TestSweepCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a cancelled simulation sweep")
	}
	s := New(Config{})
	h := s.Handler()
	rr := postJSON(t, h, "/v1/sweeps", SweepRequest{Panel: "fig1-h20"})
	if rr.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", rr.Code, rr.Body.String())
	}
	st := decodeBody[SweepStatus](t, rr)

	del := httptest.NewRecorder()
	h.ServeHTTP(del, httptest.NewRequest("DELETE", "/v1/sweeps/"+st.ID, nil))
	if del.Code != http.StatusAccepted {
		t.Fatalf("cancel status = %d", del.Code)
	}
	final := waitJob(t, s, h, st.ID)
	if final.State != JobCancelled {
		t.Errorf("state after cancel = %q (error %q), want cancelled", final.State, final.Error)
	}
	if len(final.Points) != 0 {
		t.Errorf("cancelled job carries %d points, want none", len(final.Points))
	}
	if n := s.Registry().Counter("khs_serve_sweep_jobs_total", "",
		telemetry.Labels{"state": JobCancelled}).Value(); n != 1 {
		t.Errorf("cancelled-jobs counter = %d, want 1", n)
	}
}

// TestSweepCapSheds: submissions beyond MaxActiveSweeps are shed with 429
// while the active job keeps running.
func TestSweepCapSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a short simulation sweep")
	}
	s := New(Config{MaxActiveSweeps: 1})
	h := s.Handler()
	first := postJSON(t, h, "/v1/sweeps", SweepRequest{Panel: "fig1-h20"})
	if first.Code != http.StatusAccepted {
		t.Fatalf("first submission: %d", first.Code)
	}
	st := decodeBody[SweepStatus](t, first)

	second := postJSON(t, h, "/v1/sweeps", SweepRequest{Panel: "fig1-h20", Points: 1})
	if second.Code != http.StatusTooManyRequests {
		t.Errorf("second submission: %d, want 429", second.Code)
	}
	if n := s.Registry().Counter("khs_serve_shed_total", "",
		telemetry.Labels{"reason": "sweep-cap"}).Value(); n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}

	del := httptest.NewRecorder()
	h.ServeHTTP(del, httptest.NewRequest("DELETE", "/v1/sweeps/"+st.ID, nil))
	waitJob(t, s, h, st.ID)
}
