// Package kncube reproduces "Analytical Modelling of Hot-Spot Traffic in
// Deterministically-Routed K-Ary N-Cubes" (S. Loucif, M. Ould-Khaoua,
// G. Min; Proc. 19th IEEE IPDPS, 2005).
//
// The package offers:
//
//   - the paper's analytical model of mean message latency in a wormhole-
//     switched 2-D torus with deterministic (dimension-order) routing,
//     virtual channels, and Pfister-Norton hot-spot traffic (SolveModel),
//     with a uniform-traffic baseline (SolveUniform);
//   - validated generalisations: the bidirectional torus
//     (SolveBidirectionalModel), the general k-ary n-cube (SolveNDim), and
//     the hypercube baseline of the authors' predecessor paper
//     (SolveHypercube);
//   - the flit-level simulator the paper validates against (NewSimulator),
//     supporting unidirectional and bidirectional channels and both
//     deterministic and minimal-adaptive routing;
//   - the experiment harness regenerating every panel of the paper's
//     Figures 1 and 2 (see internal/experiments, cmd/khs-figures, and the
//     benchmarks in bench_test.go).
//
// Quick start:
//
//	res, err := kncube.SolveModel(kncube.ModelParams{
//		K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4,
//	}, kncube.ModelOptions{})
//	if err != nil { ... }
//	fmt.Println("mean latency:", res.Latency, "cycles")
//
// All times are network cycles (one flit per channel per cycle); all rates
// are messages per node per cycle.
package kncube

import (
	"kncube/internal/core"
	"kncube/internal/fixpoint"
	"kncube/internal/sim"
	"kncube/internal/surface"
	"kncube/internal/telemetry"
	"kncube/internal/topology"
	"kncube/internal/traffic"
)

// --- Solver registry ---------------------------------------------------------

// ModelSpec is the variant-independent parameter set accepted by Solve: the
// union of the registered variants' parameters. Fields a variant does not
// model are rejected by that variant (e.g. the uniform baseline requires
// H = 0); zero K or Dims select the variant's natural default.
type ModelSpec = core.Spec

// SolveResult is the variant-independent latency decomposition produced by
// Solve; Detail holds the variant's full typed result.
type SolveResult = core.SolveResult

// Convergence summarises a solver's fixed-point iteration; every solved
// result carries one.
type Convergence = core.Convergence

// TraceRecord is one fixed-point iteration snapshot, delivered to the
// ModelOptions.FixPoint.Trace callback.
type TraceRecord = fixpoint.TraceRecord

// Models returns the registered model-variant names, sorted.
func Models() []string { return core.Solvers() }

// Solve evaluates the named model variant — "hotspot-2d",
// "bidirectional-2d", "uniform", "hypercube" or "ndim" — through the shared
// instrumented fixed-point driver. The typed entry points below (SolveModel,
// SolveBidirectionalModel, ...) are wrappers over the same driver.
func Solve(model string, s ModelSpec, o ModelOptions) (*SolveResult, error) {
	return core.Solve(model, s, o)
}

// Acceleration selects the fixed-point iteration's extrapolation scheme,
// set through ModelOptions.FixPoint.Acceleration.
type Acceleration = fixpoint.Acceleration

// Acceleration schemes: the damped baseline (default), safeguarded
// Anderson mixing, and componentwise Aitken Δ². AccelNone is bit-identical
// to the historical iteration; the accelerated schemes agree with it to
// within the convergence tolerance and cut the round count near saturation.
const (
	AccelNone     = fixpoint.AccelNone
	AccelAnderson = fixpoint.AccelAnderson
	AccelAitken   = fixpoint.AccelAitken
)

// ParseAcceleration maps a scheme name ("", "none", "anderson", "aitken")
// to its Acceleration value; the CLIs use it for their -accel flags.
func ParseAcceleration(name string) (Acceleration, error) {
	return fixpoint.ParseAcceleration(name)
}

// PreparedSolver is a validated, prepared model instance re-solvable for
// many offered loads without repeating the spec-invariant setup. Not safe
// for concurrent use.
type PreparedSolver = core.PreparedSolver

// Prepare validates and prepares the named variant once; see
// PreparedSolver.Solve and PreparedSolver.SolveWarm.
func Prepare(model string, s ModelSpec, o ModelOptions) (*PreparedSolver, error) {
	return core.Prepare(model, s, o)
}

// BatchOptions configure SolveBatch; the zero value solves each item
// cold, bit-identical to independent Solve calls.
type BatchOptions = core.BatchOptions

// BatchItem is one spec's outcome in a SolveBatch: exactly one of Result
// and Err is set.
type BatchItem = core.BatchItem

// SolveBatch solves many specs of one model variant, preparing once per
// distinct topology shape. Per-spec failures land in the item's Err; only
// an unknown model fails the whole batch.
func SolveBatch(model string, specs []ModelSpec, o BatchOptions) ([]BatchItem, error) {
	return core.SolveBatch(model, specs, o)
}

// --- Analytical models -------------------------------------------------------

// ModelParams parameterise the hot-spot analytical model (2-D torus,
// N = K² nodes).
type ModelParams = core.Params

// ModelOptions select the reconstruction knobs documented in DESIGN.md.
type ModelOptions = core.Options

// ModelResult is the solved model with diagnostics.
type ModelResult = core.Result

// Entrance policies for the service-time recursions (ablation A).
const (
	EntranceMeanDistance = core.EntranceMeanDistance
	EntranceKBar         = core.EntranceKBar
	EntranceWorstCase    = core.EntranceWorstCase
)

// Blocking-delay forms (ablations B and C). The zero value of ModelOptions
// selects BlockingVCOccupancy with VarianceZero — the calibrated
// reconstruction used by all harness tooling; the other forms are the
// documented ablations.
const (
	BlockingPaper       = core.BlockingPaper
	BlockingWaitOnly    = core.BlockingWaitOnly
	BlockingMultiServer = core.BlockingMultiServer
	BlockingBandwidth   = core.BlockingBandwidth
	BlockingVCOccupancy = core.BlockingVCOccupancy
)

// Variance forms for the waiting-time formulas (ablation D).
const (
	VariancePaper = core.VariancePaper
	VarianceZero  = core.VarianceZero
)

// ErrSaturated is returned by the models beyond their saturation load.
var ErrSaturated = core.ErrSaturated

// SolveModel evaluates the paper's hot-spot latency model (Eqs. 1-37); it
// is the typed form of Solve("hotspot-2d", ...).
func SolveModel(p ModelParams, o ModelOptions) (*ModelResult, error) {
	return core.SolveHotSpot(p, o)
}

// UniformParams parameterise the uniform-traffic baseline model.
type UniformParams = core.UniformParams

// UniformResult is the solved baseline.
type UniformResult = core.UniformResult

// SolveUniform evaluates the classic uniform-traffic baseline model.
func SolveUniform(p UniformParams) (*UniformResult, error) {
	return core.SolveUniform(p)
}

// BiModelResult is the solved bidirectional-torus model.
type BiModelResult = core.BiResult

// SolveBidirectionalModel evaluates the bidirectional-channel extension of
// the hot-spot model (the generalisation Section 2 of the paper mentions);
// pair it with SimConfig.Bidirectional for validation.
func SolveBidirectionalModel(p ModelParams, o ModelOptions) (*BiModelResult, error) {
	return core.SolveBidirectional(p, o)
}

// NDimParams parameterise the general k-ary n-cube hot-spot model (the
// paper analyses n = 2; this is the full-title generalisation).
type NDimParams = core.NDimParams

// NDimResult is the solved general model.
type NDimResult = core.NDimResult

// SolveNDim evaluates the general k-ary n-cube hot-spot model; it agrees
// with SolveModel at n = 2 and extends the analysis to the 3-D tori the
// paper's introduction motivates.
func SolveNDim(p NDimParams, o ModelOptions) (*NDimResult, error) {
	return core.SolveNDim(p, o)
}

// HypercubeParams parameterise the hypercube (2-ary n-cube) hot-spot model
// — the authors' own predecessor model [12] included as a baseline.
type HypercubeParams = core.HypercubeParams

// HypercubeResult is the solved hypercube model.
type HypercubeResult = core.HypercubeResult

// SolveHypercube evaluates the hypercube hot-spot baseline model; validate
// it against the simulator with SimConfig{K: 2, Dims: n}.
func SolveHypercube(p HypercubeParams, o ModelOptions) (*HypercubeResult, error) {
	return core.SolveHypercube(p, o)
}

// SaturationLambda bisects for the largest stable load of any solver.
func SaturationLambda(solve func(lambda float64) error, lo, hi, relTol float64) (float64, error) {
	return core.SaturationLambda(solve, lo, hi, relTol)
}

// --- Latency surfaces --------------------------------------------------------

// SurfaceDef identifies a latency surface: a model variant, a topology
// shape, the result-affecting options, and the ascending (λ, h) grid axes.
type SurfaceDef = surface.Def

// Surface is a precomputed latency surface: the full latency decomposition
// solved on a (λ, h) grid with a saturation-frontier mask, answering
// off-grid queries by interpolation (monotone cubic in λ, linear in h).
type Surface = surface.Surface

// SurfaceBuildOptions configure BuildSurface (iteration knobs, progress).
type SurfaceBuildOptions = surface.BuildOptions

// SurfaceLookup is one interpolated answer: the latency decomposition
// plus a relative error estimate from the interpolant's curvature.
type SurfaceLookup = surface.Lookup

// Surface lookup refusals: the caller should fall back to Solve.
var (
	ErrSurfaceOutOfRange     = surface.ErrOutOfRange
	ErrSurfaceNearSaturation = surface.ErrNearSaturation
)

// BuildSurface solves the definition's full (λ, h) grid — each h row one
// prepared solver swept along λ with warm starts, stopping at the row's
// saturation frontier — and returns the queryable surface. Persist it
// with WriteSurfaceFile and load it back with ReadSurfaceFile.
func BuildSurface(d SurfaceDef, o SurfaceBuildOptions) (*Surface, error) {
	return surface.Build(d, o)
}

// WriteSurfaceFile encodes s into dir under a content-addressed name in
// the compact checksummed binary format, returning the path.
func WriteSurfaceFile(dir string, s *Surface) (string, error) {
	return surface.WriteFile(dir, s)
}

// ReadSurfaceFile decodes a surface written by WriteSurfaceFile,
// verifying its checksum and structure.
func ReadSurfaceFile(path string) (*Surface, error) {
	return surface.ReadFile(path)
}

// --- Simulator ---------------------------------------------------------------

// SimConfig configures the flit-level wormhole simulator.
type SimConfig = sim.Config

// SimRunOptions control a measurement run.
type SimRunOptions = sim.RunOptions

// SimResult summarises a run.
type SimResult = sim.Result

// Simulator is a flit-level network instance.
type Simulator = sim.Network

// Routing selects the simulator's routing algorithm: the paper's
// deterministic dimension-order routing, or minimal adaptive routing with
// Duato-style escape channels (the comparison point of the paper's
// introduction).
type Routing = sim.Routing

// Routing algorithms.
const (
	RoutingDimensionOrder = sim.RoutingDimensionOrder
	RoutingAdaptive       = sim.RoutingAdaptive
)

// Message is one simulated wormhole message (visible through delivery
// callbacks).
type Message = sim.Message

// NewSimulator builds a simulator.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return sim.New(cfg) }

// --- Telemetry ---------------------------------------------------------------

// MetricsRegistry is a named registry of counters, gauges and histograms
// with Prometheus-text and JSON exposition; recording is lock-free and
// allocation-free on the hot path (see internal/telemetry and DESIGN.md §7).
type MetricsRegistry = telemetry.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// SimCollector receives the simulator's instrumentation events; set
// SimConfig.Collector to instrument a run (nil leaves the simulator
// uninstrumented at negligible cost).
type SimCollector = sim.Collector

// SimRunStats carries the end-of-run aggregates delivered to a collector.
type SimRunStats = sim.RunStats

// NewSimCollector returns a collector recording the khs_sim_* metric set
// (per-channel flit counts and utilisation, blocking-cycle and queue-depth
// histograms, message counters, cycles/second) into reg.
func NewSimCollector(reg *MetricsRegistry) SimCollector {
	return sim.NewTelemetryCollector(reg)
}

// --- Topology and traffic ----------------------------------------------------

// NodeID identifies a node.
type NodeID = topology.NodeID

// Cube is the k-ary n-cube topology.
type Cube = topology.Cube

// NewCube returns a k-ary n-cube.
func NewCube(k, n int) (*Cube, error) { return topology.New(k, n) }

// Arrivals is a temporal arrival process; Pattern a spatial destination
// pattern.
type (
	Arrivals = traffic.Arrivals
	Pattern  = traffic.Pattern
)

// Traffic constructors.
var (
	NewPoisson   = traffic.NewPoisson
	NewBernoulli = traffic.NewBernoulli
	NewMMPP      = traffic.NewMMPP
	NewHotSpot   = traffic.NewHotSpot
)

// UniformPattern returns uniform destination traffic over cube.
func UniformPattern(cube *Cube) Pattern { return traffic.Uniform{Cube: cube} }

// TransposePattern returns the matrix-transpose permutation pattern.
func TransposePattern(cube *Cube) Pattern { return traffic.Transpose{Cube: cube} }

// BitReversalPattern returns the bit-reversal permutation pattern.
func BitReversalPattern(cube *Cube) Pattern { return traffic.BitReversal{Cube: cube} }
