module kncube

go 1.22
