// Command khs-bench converts `go test -bench` text output into a
// machine-readable benchmark trajectory file (BENCH_sim.json,
// BENCH_solve.json). The CI bench job previously piped the human-readable
// bench text straight into a file with a .json name; this tool emits actual
// JSON so the numbers can be diffed, plotted, and regression-gated across
// commits:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/khs-bench -label after -append
//	go test -run '^$' -bench '^BenchmarkSolve' . | go run ./cmd/khs-bench -o BENCH_solve.json
//
// Each invocation appends (or writes) one labelled entry holding every
// parsed benchmark: name, iterations, ns/op, B/op, allocs/op, the custom
// iters/op metric the BenchmarkSolve* family reports (fixed-point rounds
// per solve — the number the Anderson acceleration work is tracked by),
// and — for the simulator Step benchmarks — the derived simulated cycles
// per second (1e9 / ns_per_op), the headline number the event-driven
// hot-loop rework is tracked by.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"kncube/internal/telemetry"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are always emitted (no omitempty): zero
	// allocations is the load-bearing value for the hot-loop benchmarks.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// ItersPerOp is the custom iters/op metric reported by the
	// BenchmarkSolve* family: fixed-point substitution rounds per op.
	ItersPerOp float64 `json:"iters_per_op,omitempty"`
	// CyclesPerSec is 1e9/NsPerOp for benchmarks that advance the
	// simulator by one cycle per iteration (name contains "Step").
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// Entry is one labelled benchmark run (one tool invocation).
type Entry struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// logger carries the CLI's diagnostics on stderr; the trajectory JSON goes
// to the -o file. Set in main once -log-format is parsed; nil until then.
var logger *slog.Logger

func main() {
	label := flag.String("label", "run", "label recorded on this entry (e.g. baseline, after)")
	out := flag.String("o", "BENCH_sim.json", "output file")
	appendTo := flag.Bool("append", false, "append to an existing trajectory file instead of overwriting")
	logFormat := flag.String("log-format", "text", "structured log format for diagnostics: text or json")
	flag.Parse()
	lg, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fatal(err)
	}
	logger = lg

	entry, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(entry.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	entry.Label = *label
	entry.Date = time.Now().UTC().Format("2006-01-02")

	var entries []Entry
	if *appendTo {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &entries); err != nil {
				fatal(fmt.Errorf("existing %s is not a trajectory file: %w", *out, err))
			}
		}
	}
	entries = append(entries, entry)

	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	logger.Info("wrote benchmarks",
		"count", len(entry.Benchmarks), "label", entry.Label, "path", *out)
}

func fatal(err error) {
	// Pre-parse failures (a bad -log-format itself) fall back to plain
	// stderr; everything after flag parsing goes through the logger.
	if logger != nil {
		logger.Error("fatal", "err", err.Error())
	} else {
		fmt.Fprintln(os.Stderr, "khs-bench:", err)
	}
	os.Exit(2)
}

// parse reads `go test -bench` output and extracts every benchmark line
// plus the most recent cpu: context line.
func parse(r io.Reader) (Entry, error) {
	var e Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			e.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		e.Benchmarks = append(e.Benchmarks, b)
	}
	return e, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   123456   931.2 ns/op   6 B/op   0 allocs/op
//
// Unknown units are ignored; a line without an ns/op measurement is not a
// result line (e.g. "BenchmarkFoo" printed alone when -v runs it).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = val
			sawNs = true
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		case "iters/op":
			b.ItersPerOp = val
		}
	}
	if !sawNs {
		return Benchmark{}, false
	}
	if strings.Contains(b.Name, "Step") && b.NsPerOp > 0 {
		b.CyclesPerSec = 1e9 / b.NsPerOp
	}
	return b, true
}
