package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: kncube
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorStep 	 3247651	       931.2 ns/op	       6 B/op	       0 allocs/op
BenchmarkSolverFigure1-8 	     120	   9876543 ns/op
BenchmarkSolveNearSat/hotspot-2d/anderson-8 	   10000	    104500 ns/op	       102.0 iters/op
PASS
ok  	kncube	3.853s
`

func TestParseExtractsBenchmarks(t *testing.T) {
	e, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if e.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", e.CPU)
	}
	if len(e.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(e.Benchmarks), e.Benchmarks)
	}
	step := e.Benchmarks[0]
	if step.Name != "BenchmarkSimulatorStep" || step.Iterations != 3247651 {
		t.Errorf("step benchmark = %+v", step)
	}
	//lint:ignore floateq strconv round-trips the literal text exactly
	if step.NsPerOp != 931.2 || step.BytesPerOp != 6 || step.AllocsPerOp != 0 {
		t.Errorf("step metrics = %+v", step)
	}
	// A Step benchmark advances one simulated cycle per iteration, so the
	// derived rate is 1e9/ns.
	if got, want := step.CyclesPerSec, 1e9/931.2; got < want*0.999 || got > want*1.001 {
		t.Errorf("cycles/sec = %v, want ~%v", got, want)
	}
	solver := e.Benchmarks[1]
	//lint:ignore floateq strconv round-trips the literal text exactly
	if solver.Name != "BenchmarkSolverFigure1-8" || solver.NsPerOp != 9876543 {
		t.Errorf("solver benchmark = %+v", solver)
	}
	//lint:ignore floateq derived field must be exactly unset for non-Step benchmarks
	if solver.CyclesPerSec != 0 {
		t.Errorf("non-Step benchmark got cycles/sec %v", solver.CyclesPerSec)
	}
	accel := e.Benchmarks[2]
	//lint:ignore floateq strconv round-trips the literal text exactly
	if accel.ItersPerOp != 102 || accel.NsPerOp != 104500 {
		t.Errorf("solve benchmark = %+v, want 102 iters/op at 104500 ns/op", accel)
	}
	//lint:ignore floateq strconv round-trips the literal text exactly
	if solver.ItersPerOp != 0 || step.ItersPerOp != 0 {
		t.Errorf("iters/op leaked onto benchmarks that do not report it: %+v %+v", solver, step)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := "BenchmarkAlone\n=== RUN TestFoo\nBenchmarkBad abc 1 ns/op\n"
	e, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from junk, want 0", len(e.Benchmarks))
	}
}
