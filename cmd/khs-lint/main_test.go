package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"io"
	"log/slog"
	"reflect"
	"testing"

	"kncube/internal/analysis"
)

func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// TestRunSelf lints this command's own package end-to-end through the
// same code path main uses; a clean tree exits 0.
func TestRunSelf(t *testing.T) {
	if code := run([]string{"./..."}, false, io.Discard, io.Discard, discardLogger()); code != 0 {
		t.Fatalf("run(./...) = %d, want 0", code)
	}
}

// TestRunSelfJSON runs the same self-lint through the -json path: exit 0,
// a decodable JSON array on stdout, and no unsuppressed entries (this
// package carries no ignore directives, so the inventory may be empty but
// must still be an array).
func TestRunSelfJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, true, &stdout, &stderr, discardLogger()); code != 0 {
		t.Fatalf("run(-json ./...) = %d, stderr: %s", code, stderr.String())
	}
	var inv []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &inv); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	for _, d := range inv {
		if !d.Suppressed {
			t.Errorf("unsuppressed finding in a run that exited 0: %+v", d)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic in inventory: %+v", d)
		}
	}
}

// TestJSONRoundTrip pins the -json wire form: every field of a diagnostic
// — position, analyzer, message, and crucially the suppression state —
// survives encode/decode unchanged, so the archived CI artifact is a
// faithful audit inventory.
func TestJSONRoundTrip(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/sim/step.go", Line: 405, Column: 10},
			Analyzer: "hotalloc",
			Message:  "heap-escaping composite literal (&T{...}) on hot path (sim.(*Network).Step → sim.(*Network).generate)",
			// Suppressed with a reason in the tree; the JSON must say so.
			Suppressed: true,
		},
		{
			Pos:      token.Position{Filename: "internal/core/hotspot.go", Line: 12, Column: 3},
			Analyzer: "floateq",
			Message:  "== on float64 operands",
		},
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(toJSON(diags)); err != nil {
		t.Fatal(err)
	}
	var back []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decoding emitted JSON: %v", err)
	}
	want := []jsonDiagnostic{
		{File: "internal/sim/step.go", Line: 405, Column: 10, Analyzer: "hotalloc",
			Message:    "heap-escaping composite literal (&T{...}) on hot path (sim.(*Network).Step → sim.(*Network).generate)",
			Suppressed: true},
		{File: "internal/core/hotspot.go", Line: 12, Column: 3, Analyzer: "floateq",
			Message: "== on float64 operands"},
	}
	if !reflect.DeepEqual(back, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", back, want)
	}
}

// TestJSONEmptyInventoryIsAnArray: a clean tree must emit [] rather than
// null, so downstream jq/matcher tooling never special-cases the happy
// path.
func TestJSONEmptyInventoryIsAnArray(t *testing.T) {
	raw, err := json.Marshal(toJSON(nil))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "[]" {
		t.Errorf("empty inventory encodes as %s, want []", raw)
	}
}

func TestFirstLine(t *testing.T) {
	if got := firstLine("summary\nrest"); got != "summary" {
		t.Errorf("firstLine = %q", got)
	}
	if got := firstLine("only"); got != "only" {
		t.Errorf("firstLine = %q", got)
	}
}
