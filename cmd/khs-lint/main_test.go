package main

import "testing"

// TestRunSelf lints this command's own package end-to-end through the
// same code path main uses; a clean tree exits 0.
func TestRunSelf(t *testing.T) {
	if code := run([]string{"./..."}); code != 0 {
		t.Fatalf("run(./...) = %d, want 0", code)
	}
}

func TestFirstLine(t *testing.T) {
	if got := firstLine("summary\nrest"); got != "summary" {
		t.Errorf("firstLine = %q", got)
	}
	if got := firstLine("only"); got != "only" {
		t.Errorf("firstLine = %q", got)
	}
}
