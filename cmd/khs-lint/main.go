// Command khs-lint runs the project's analyzer suite — the compiler-checked
// form of the solver, seeding, and numerics contracts — over the named
// package patterns (default ./...). It prints one line per finding and
// exits non-zero if there are any, so CI can gate on it:
//
//	go run ./cmd/khs-lint ./...
//
// Findings can be suppressed case-by-case with a reasoned directive on the
// offending line or the line above:
//
//	//lint:ignore floateq exact zero selects the degenerate branch
//
// The analyzers and the invariants they enforce are documented in
// DESIGN.md §6; `khs-lint -help` lists them.
package main

import (
	"flag"
	"fmt"
	"os"

	"kncube/internal/analysis/khslint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: khs-lint [packages]\n\nAnalyzers:\n")
		for _, a := range khslint.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args()))
}

func run(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "khs-lint:", err)
		return 2
	}
	diags, err := khslint.Run(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khs-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "khs-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
