// Command khs-lint runs the project's analyzer suite — the compiler-checked
// form of the solver, seeding, numerics, and hot-path contracts — over the
// named package patterns (default ./...). It prints one line per finding and
// exits non-zero if there are any, so CI can gate on it:
//
//	go run ./cmd/khs-lint ./...
//	go run ./cmd/khs-lint -json ./... > diagnostics.json
//
// With -json the full diagnostic inventory — suppressed sites included, each
// with its suppression state — is written to stdout as a JSON array, and the
// human-readable finding lines go to stderr; the exit code still reflects
// only unsuppressed findings. CI archives the JSON so reviews can audit the
// //lint:ignore inventory alongside the live findings.
//
// Findings can be suppressed case-by-case with a reasoned directive on the
// offending line or the line above:
//
//	//lint:ignore floateq exact zero selects the degenerate branch
//
// The analyzers and the invariants they enforce are documented in
// DESIGN.md §6; `khs-lint -help` lists them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"kncube/internal/analysis"
	"kncube/internal/analysis/khslint"
	"kncube/internal/telemetry"
)

// jsonDiagnostic is the -json wire form of one diagnostic. Suppressed
// sites are included (with their state) so the output is the complete
// audit inventory, not just the failure list.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func toJSON(diags []analysis.Diagnostic) []jsonDiagnostic {
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Column:     d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
	}
	return out
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the full diagnostic inventory (suppressed sites included) as JSON on stdout")
	logFormat := flag.String("log-format", "text", "structured log format for diagnostics (not finding lines): text or json")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: khs-lint [-json] [-log-format text|json] [packages]\n\nAnalyzers:\n")
		for _, a := range khslint.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()
	logger, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khs-lint:", err)
		os.Exit(2)
	}
	os.Exit(run(flag.Args(), *jsonOut, os.Stdout, os.Stderr, logger))
}

// run prints findings one per line on stdout (stderr with -json) in the
// fixed "file:line:col: message [analyzer]" form the CI problem matcher
// parses; only the summary/error diagnostics go through the structured
// logger.
func run(patterns []string, jsonOut bool, stdout, stderr io.Writer, logger *slog.Logger) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		logger.Error("fatal", "err", err.Error())
		return 2
	}
	all, err := khslint.RunAll(wd, patterns...)
	if err != nil {
		logger.Error("fatal", "err", err.Error())
		return 2
	}
	findings := 0
	lineOut := stdout
	if jsonOut {
		lineOut = stderr
	}
	for _, d := range all {
		if d.Suppressed {
			continue
		}
		findings++
		fmt.Fprintln(lineOut, d)
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toJSON(all)); err != nil {
			logger.Error("fatal", "err", err.Error())
			return 2
		}
	}
	if findings > 0 {
		logger.Error("findings", "count", findings)
		return 1
	}
	return 0
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
