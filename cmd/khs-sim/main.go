// Command khs-sim runs the flit-level wormhole simulator on a k-ary n-cube
// with hot-spot (or uniform) traffic and reports the measured latency.
//
// Usage:
//
//	khs-sim -k 16 -n 2 -v 2 -lm 32 -h 0.2 -lambda 0.0002 -cycles 400000
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"kncube"
	"kncube/internal/telemetry"
)

// logger carries the CLI's structured diagnostics (errors, notices); the
// measurement report itself stays plain text on stdout. Set in main once
// -log-format is parsed; nil until then.
var logger *slog.Logger

func main() {
	var (
		k        = flag.Int("k", 16, "radix")
		n        = flag.Int("n", 2, "dimensions")
		v        = flag.Int("v", 2, "virtual channels per physical channel")
		lm       = flag.Int("lm", 32, "message length in flits")
		h        = flag.Float64("h", 0.2, "hot-spot fraction (0 = uniform)")
		lambda   = flag.Float64("lambda", 1e-4, "generation rate, messages/node/cycle")
		seed     = flag.Int64("seed", 1, "random seed")
		warmup   = flag.Int64("warmup", 20000, "warm-up cycles")
		cycles   = flag.Int64("cycles", 400000, "maximum simulated cycles")
		measured = flag.Int64("measured", 5000, "minimum measured messages")
		eject    = flag.Bool("ejection-contention", false, "model a single 1-flit/cycle ejection channel")
		pattern  = flag.String("pattern", "hotspot", "traffic pattern: hotspot, uniform, transpose, bitreversal")
		// Observability (DESIGN.md §7).
		logFormat  = flag.String("log-format", "text", "structured log format for diagnostics: text or json")
		metricsOut = flag.String("metrics-out", "", "write khs_sim_* metrics to this file (.json = JSON snapshot, anything else = Prometheus text)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	lg, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fatal(err)
	}
	logger = lg

	cube, err := kncube.NewCube(*k, *n)
	if err != nil {
		fatal(err)
	}
	var pat kncube.Pattern
	switch *pattern {
	case "hotspot":
		hot := cube.FromCoords(centre(*k, *n))
		pat, err = kncube.NewHotSpot(cube, hot, *h)
		if err != nil {
			fatal(err)
		}
	case "uniform":
		pat = kncube.UniformPattern(cube)
	case "transpose":
		pat = kncube.TransposePattern(cube)
	case "bitreversal":
		pat = kncube.BitReversalPattern(cube)
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}

	var reg *kncube.MetricsRegistry
	cfg := kncube.SimConfig{
		K: *k, Dims: *n, VCs: *v, MsgLen: *lm,
		Lambda: *lambda, Pattern: pat, Seed: *seed,
		EjectionContention: *eject,
	}
	if *metricsOut != "" {
		reg = kncube.NewMetricsRegistry()
		cfg.Collector = kncube.NewSimCollector(reg)
	}
	nw, err := kncube.NewSimulator(cfg)
	if err != nil {
		fatal(err)
	}
	stopProf, err := telemetry.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	res, err := nw.Run(kncube.SimRunOptions{
		WarmupCycles: *warmup, MaxCycles: *cycles, MinMeasured: *measured,
	})
	if perr := stopProf(); perr != nil {
		fatal(perr)
	}
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		if werr := reg.WriteFile(*metricsOut); werr != nil {
			fatal(werr)
		}
	}
	fmt.Printf("pattern            %s\n", pat)
	fmt.Printf("mean latency       %10.2f ± %.2f cycles (95%% CI)\n", res.MeanLatency, res.CI95)
	fmt.Printf("  regular          %10.2f cycles\n", res.MeanRegular)
	fmt.Printf("  hot-spot         %10.2f cycles\n", res.MeanHot)
	fmt.Printf("  network          %10.2f cycles\n", res.MeanNetwork)
	fmt.Printf("  source wait      %10.2f cycles\n", res.MeanSourceWait)
	fmt.Printf("mean hops          %10.2f\n", res.MeanHops)
	fmt.Printf("messages           injected %d, delivered %d, measured %d\n",
		res.Injected, res.Delivered, res.Measured)
	fmt.Printf("cycles             %10d (steady=%v, saturated=%v)\n",
		res.Cycles, res.Steady, res.Saturated)
	fmt.Printf("throughput         %10.6f msgs/node/cycle\n", res.Throughput)
	fmt.Printf("channel util       mean %.4f, max %.4f\n",
		res.ChannelUtilisation, res.MaxChannelUtilisation)
	fmt.Printf("VC multiplexing    %10.3f\n", res.VCMultiplexing)
	if res.Saturated {
		os.Exit(2)
	}
}

func centre(k, n int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = k / 2
	}
	return c
}

func fatal(err error) {
	// Pre-parse failures (a bad -log-format itself) fall back to plain
	// stderr; everything after flag parsing goes through the logger.
	if logger != nil {
		logger.Error("fatal", "err", err.Error())
	} else {
		fmt.Fprintln(os.Stderr, "khs-sim:", err)
	}
	os.Exit(1)
}
