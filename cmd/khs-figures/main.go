// Command khs-figures regenerates the evaluation figures of the paper:
// model-vs-simulation latency curves for every panel of Figures 1 and 2.
//
// Points are simulated by the parallel sweep engine: every (panel, load,
// replication) job runs on a bounded worker pool under a seed derived
// deterministically from -seed and the job's identity, so output is
// bit-identical for any -jobs value (see EXPERIMENTS.md for the seed
// scheme).
//
// Usage:
//
//	khs-figures                        # all six panels, tables + plots
//	khs-figures -panel fig1-h40        # one panel
//	khs-figures -csv -outdir results/  # write CSV files
//	khs-figures -fast                  # reduced simulation budget
//	khs-figures -jobs 8                # worker-pool size (default NumCPU)
//	khs-figures -reps 5                # pool 5 replications per point
//	khs-figures -timeout 2m            # per-point simulation timeout
//	khs-figures -model bidirectional-2d  # sweep another model variant
//	                                     # (simulator channels follow the model)
//	khs-figures -accel anderson        # accelerate the model solves
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"kncube/internal/core"
	"kncube/internal/experiments"
	"kncube/internal/fixpoint"
	"kncube/internal/telemetry"
)

func main() {
	// Ctrl-C cancels the sweep cooperatively: in-flight points finish,
	// queued points are skipped, and RunPanels returns ctx.Err().
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "khs-figures:", err)
		os.Exit(1)
	}
}

// run executes one full figure sweep and blocks until it finishes or ctx
// is cancelled. Tables and plots go to stdout; progress, status, and
// structured diagnostics go to stderr.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("khs-figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		panelID = fs.String("panel", "", "run only this panel (e.g. fig1-h20); empty = all")
		csv     = fs.Bool("csv", false, "write CSV files instead of tables")
		outdir  = fs.String("outdir", ".", "directory for CSV output")
		fast    = fs.Bool("fast", false, "reduced simulation budget (quick look)")
		noPlot  = fs.Bool("no-plot", false, "suppress the ASCII plots")
		model   = fs.String("model", experiments.DefaultModel, "analytical model variant (a core registry name, e.g. hotspot-2d, bidirectional-2d)")
		seed    = fs.Int64("seed", 1, "base simulation seed (per-job seeds are derived from it)")
		jobs    = fs.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
		reps    = fs.Int("reps", 1, "independent replications pooled per point")
		timeout = fs.Duration("timeout", 0, "per-point simulation timeout (0 = none)")
		quiet   = fs.Bool("quiet", false, "suppress per-point progress lines")
		// Fixed-point iteration knobs (DESIGN.md §10). "none" keeps the
		// damped baseline bit-identical to an unset flag.
		accel    = fs.String("accel", "none", "fixed-point acceleration scheme for the model solves: none, anderson, aitken")
		accelWin = fs.Int("accel-window", 0, "Anderson mixing window, past residual differences combined per round (0 = solver default; requires -accel anderson)")
		// Observability (DESIGN.md §7).
		logFormat  = fs.String("log-format", "text", "structured log format for progress/status lines: text or json")
		manifest   = fs.String("manifest", "", "write one JSONL run-manifest record per simulation job to this file")
		traceOut   = fs.String("trace-out", "", "directory for per-solve convergence traces (one JSONL file per load point)")
		metricsOut = fs.String("metrics-out", "", "write sweep metrics to this file (.json = JSON snapshot, anything else = Prometheus text)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	logger, err := telemetry.NewLogger(stderr, *logFormat)
	if err != nil {
		return err
	}

	budget := experiments.DefaultSimBudget()
	if *fast {
		budget = experiments.SimBudget{
			WarmupCycles: 10000, MaxCycles: 150000, MinMeasured: 1500,
		}
	}
	budget.Seed = *seed
	opts := core.Options{}
	scheme, err := fixpoint.ParseAcceleration(*accel)
	if err != nil {
		return fmt.Errorf("-accel: %w", err)
	}
	if *accelWin < 0 {
		return fmt.Errorf("-accel-window must be non-negative, got %d", *accelWin)
	}
	if *accelWin > 0 && scheme != fixpoint.AccelAnderson {
		return fmt.Errorf("-accel-window is only meaningful with -accel anderson")
	}
	opts.FixPoint.Acceleration = scheme
	opts.FixPoint.Window = *accelWin

	panels := experiments.Figures()
	if *panelID != "" {
		p, err := experiments.PanelByID(*panelID)
		if err != nil {
			return err
		}
		panels = []experiments.Panel{p}
	}

	sweep := experiments.Sweep{
		Jobs:       *jobs,
		Reps:       *reps,
		JobTimeout: *timeout,
		Budget:     budget,
		Model:      *model,
		Opts:       opts,
	}
	var manifestFile *os.File
	if *manifest != "" {
		f, err := os.Create(*manifest)
		if err != nil {
			return err
		}
		manifestFile = f
		sweep.Manifest = telemetry.NewManifestWriter(f)
	}
	if *traceOut != "" {
		sink, err := telemetry.NewDirTraceSink(*traceOut)
		if err != nil {
			return err
		}
		sweep.TraceSink = sink
	}
	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
		sweep.Metrics = reg
	}
	stopProf, err := telemetry.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	if !*quiet {
		sweep.Progress = func(ev experiments.SweepProgress) {
			logger.Info("point",
				"done", ev.Done, "total", ev.Total,
				"panel", ev.Panel.ID, "lambda", ev.Panel.Lambdas[ev.LambdaIdx],
				"rep", ev.Rep+1, "reps", *reps,
				"latency", ev.Result.MeanLatency, "ci95", ev.Result.CI95,
				"saturated", ev.Result.Saturated)
		}
		logger.Info("sweeping",
			"panels", len(panels), "workers", *jobs, "reps", *reps, "seed", *seed)
	}

	start := time.Now()
	results, err := sweep.RunPanels(ctx, panels)
	if perr := stopProf(); perr != nil {
		return perr
	}
	if manifestFile != nil {
		if cerr := manifestFile.Close(); cerr != nil {
			return cerr
		}
	}
	if reg != nil {
		if werr := reg.WriteFile(*metricsOut); werr != nil {
			return werr
		}
	}
	if err != nil {
		return err
	}
	if !*quiet {
		logger.Info("sweep finished", "elapsed", time.Since(start).Round(time.Millisecond).String())
	}

	return render(stdout, results, *csv, *outdir, *model, *noPlot, logger)
}

// render writes the sweep results as CSV files (status on the logger) or
// as tables and ASCII plots on out.
func render(out io.Writer, results []experiments.PanelResult, csv bool, outdir, model string, noPlot bool, logger *slog.Logger) error {
	for _, pr := range results {
		p, points := pr.Panel, pr.Points
		title := fmt.Sprintf("%s %s — N=%d, V=%d, Lm=%d", p.Figure, p.Label, p.K*p.K, p.V, p.Lm)
		if csv {
			// Non-default variants get their own files so they can never
			// overwrite the published hotspot-2d reference CSVs.
			base := p.ID
			if model != experiments.DefaultModel {
				base += "-" + model
			}
			path := filepath.Join(outdir, base+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := experiments.WriteCSV(f, points); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			// Status lines go to stderr so stdout stays clean for piping
			// (the CSV itself goes to files; tables/plots to stdout).
			logger.Info("wrote", "path", path)
			continue
		}
		if err := experiments.WriteTable(out, title, points); err != nil {
			return err
		}
		if !noPlot {
			if err := experiments.AsciiPlot(out, title, points, 64, 16); err != nil {
				return err
			}
		}
		fmt.Fprintln(out)
	}
	return nil
}
