// Command khs-figures regenerates the evaluation figures of the paper:
// model-vs-simulation latency curves for every panel of Figures 1 and 2.
//
// Points are simulated by the parallel sweep engine: every (panel, load,
// replication) job runs on a bounded worker pool under a seed derived
// deterministically from -seed and the job's identity, so output is
// bit-identical for any -jobs value (see EXPERIMENTS.md for the seed
// scheme).
//
// Usage:
//
//	khs-figures                        # all six panels, tables + plots
//	khs-figures -panel fig1-h40        # one panel
//	khs-figures -csv -outdir results/  # write CSV files
//	khs-figures -fast                  # reduced simulation budget
//	khs-figures -jobs 8                # worker-pool size (default NumCPU)
//	khs-figures -reps 5                # pool 5 replications per point
//	khs-figures -timeout 2m            # per-point simulation timeout
//	khs-figures -model bidirectional-2d  # sweep another model variant
//	                                     # (simulator channels follow the model)
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"kncube/internal/core"
	"kncube/internal/experiments"
	"kncube/internal/telemetry"
)

// logger carries progress and status diagnostics on stderr so stdout stays
// clean for tables, plots, and piping. Set in main once -log-format is
// parsed; nil until then.
var logger *slog.Logger

func main() {
	var (
		panelID = flag.String("panel", "", "run only this panel (e.g. fig1-h20); empty = all")
		csv     = flag.Bool("csv", false, "write CSV files instead of tables")
		outdir  = flag.String("outdir", ".", "directory for CSV output")
		fast    = flag.Bool("fast", false, "reduced simulation budget (quick look)")
		noPlot  = flag.Bool("no-plot", false, "suppress the ASCII plots")
		model   = flag.String("model", experiments.DefaultModel, "analytical model variant (a core registry name, e.g. hotspot-2d, bidirectional-2d)")
		seed    = flag.Int64("seed", 1, "base simulation seed (per-job seeds are derived from it)")
		jobs    = flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
		reps    = flag.Int("reps", 1, "independent replications pooled per point")
		timeout = flag.Duration("timeout", 0, "per-point simulation timeout (0 = none)")
		quiet   = flag.Bool("quiet", false, "suppress per-point progress lines")
		// Observability (DESIGN.md §7).
		logFormat  = flag.String("log-format", "text", "structured log format for progress/status lines: text or json")
		manifest   = flag.String("manifest", "", "write one JSONL run-manifest record per simulation job to this file")
		traceOut   = flag.String("trace-out", "", "directory for per-solve convergence traces (one JSONL file per load point)")
		metricsOut = flag.String("metrics-out", "", "write sweep metrics to this file (.json = JSON snapshot, anything else = Prometheus text)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	lg, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fatal(err)
	}
	logger = lg

	budget := experiments.DefaultSimBudget()
	if *fast {
		budget = experiments.SimBudget{
			WarmupCycles: 10000, MaxCycles: 150000, MinMeasured: 1500,
		}
	}
	budget.Seed = *seed
	opts := core.Options{}

	panels := experiments.Figures()
	if *panelID != "" {
		p, err := experiments.PanelByID(*panelID)
		if err != nil {
			fatal(err)
		}
		panels = []experiments.Panel{p}
	}

	sweep := experiments.Sweep{
		Jobs:       *jobs,
		Reps:       *reps,
		JobTimeout: *timeout,
		Budget:     budget,
		Model:      *model,
		Opts:       opts,
	}
	var manifestFile *os.File
	if *manifest != "" {
		f, err := os.Create(*manifest)
		if err != nil {
			fatal(err)
		}
		manifestFile = f
		sweep.Manifest = telemetry.NewManifestWriter(f)
	}
	if *traceOut != "" {
		sink, err := telemetry.NewDirTraceSink(*traceOut)
		if err != nil {
			fatal(err)
		}
		sweep.TraceSink = sink
	}
	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
		sweep.Metrics = reg
	}
	stopProf, err := telemetry.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		sweep.Progress = func(ev experiments.SweepProgress) {
			logger.Info("point",
				"done", ev.Done, "total", ev.Total,
				"panel", ev.Panel.ID, "lambda", ev.Panel.Lambdas[ev.LambdaIdx],
				"rep", ev.Rep+1, "reps", *reps,
				"latency", ev.Result.MeanLatency, "ci95", ev.Result.CI95,
				"saturated", ev.Result.Saturated)
		}
		logger.Info("sweeping",
			"panels", len(panels), "workers", *jobs, "reps", *reps, "seed", *seed)
	}

	// Ctrl-C cancels the sweep cooperatively: in-flight points finish,
	// queued points are skipped, and RunPanels returns ctx.Err().
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	results, err := sweep.RunPanels(ctx, panels)
	if perr := stopProf(); perr != nil {
		fatal(perr)
	}
	if manifestFile != nil {
		if cerr := manifestFile.Close(); cerr != nil {
			fatal(cerr)
		}
	}
	if reg != nil {
		if werr := reg.WriteFile(*metricsOut); werr != nil {
			fatal(werr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		logger.Info("sweep finished", "elapsed", time.Since(start).Round(time.Millisecond).String())
	}

	for _, pr := range results {
		p, points := pr.Panel, pr.Points
		title := fmt.Sprintf("%s %s — N=%d, V=%d, Lm=%d", p.Figure, p.Label, p.K*p.K, p.V, p.Lm)
		if *csv {
			// Non-default variants get their own files so they can never
			// overwrite the published hotspot-2d reference CSVs.
			base := p.ID
			if *model != experiments.DefaultModel {
				base += "-" + *model
			}
			path := filepath.Join(*outdir, base+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteCSV(f, points); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			// Status lines go to stderr so stdout stays clean for piping
			// (the CSV itself goes to files; tables/plots to stdout).
			logger.Info("wrote", "path", path)
			continue
		}
		if err := experiments.WriteTable(os.Stdout, title, points); err != nil {
			fatal(err)
		}
		if !*noPlot {
			if err := experiments.AsciiPlot(os.Stdout, title, points, 64, 16); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	// Pre-parse failures (a bad -log-format itself) fall back to plain
	// stderr; everything after flag parsing goes through the logger.
	if logger != nil {
		logger.Error("fatal", "err", err.Error())
	} else {
		fmt.Fprintln(os.Stderr, "khs-figures:", err)
	}
	os.Exit(1)
}
