// Command khs-figures regenerates the evaluation figures of the paper:
// model-vs-simulation latency curves for every panel of Figures 1 and 2.
//
// Usage:
//
//	khs-figures                        # all six panels, tables + plots
//	khs-figures -panel fig1-h40        # one panel
//	khs-figures -csv -outdir results/  # write CSV files
//	khs-figures -fast                  # reduced simulation budget
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kncube/internal/core"
	"kncube/internal/experiments"
)

func main() {
	var (
		panelID = flag.String("panel", "", "run only this panel (e.g. fig1-h20); empty = all")
		csv     = flag.Bool("csv", false, "write CSV files instead of tables")
		outdir  = flag.String("outdir", ".", "directory for CSV output")
		fast    = flag.Bool("fast", false, "reduced simulation budget (quick look)")
		noPlot  = flag.Bool("no-plot", false, "suppress the ASCII plots")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	budget := experiments.DefaultSimBudget()
	if *fast {
		budget = experiments.SimBudget{
			WarmupCycles: 10000, MaxCycles: 150000, MinMeasured: 1500,
		}
	}
	budget.Seed = *seed
	opts := core.Options{}

	panels := experiments.Figures()
	if *panelID != "" {
		p, err := experiments.PanelByID(*panelID)
		if err != nil {
			fatal(err)
		}
		panels = []experiments.Panel{p}
	}

	for _, p := range panels {
		fmt.Fprintf(os.Stderr, "running %s (%s, %s)...\n", p.ID, p.Figure, p.Label)
		points, err := experiments.RunPanel(p, budget, opts)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("%s %s — N=%d, V=%d, Lm=%d", p.Figure, p.Label, p.K*p.K, p.V, p.Lm)
		if *csv {
			path := filepath.Join(*outdir, p.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteCSV(f, points); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
			continue
		}
		if err := experiments.WriteTable(os.Stdout, title, points); err != nil {
			fatal(err)
		}
		if !*noPlot {
			if err := experiments.AsciiPlot(os.Stdout, title, points, 64, 16); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "khs-figures:", err)
	os.Exit(1)
}
