package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func runFigures(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(context.Background(), args, &out, &errb)
	return out.String(), errb.String(), err
}

// TestAccelFlagValidation: the fixed-point acceleration flags must be
// rejected before any simulation starts — these runs finish instantly.
func TestAccelFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"unknown scheme", []string{"-accel", "psychic"}, "acceleration"},
		{"negative window", []string{"-accel", "anderson", "-accel-window", "-1"}, "non-negative"},
		{"window without anderson", []string{"-accel-window", "3"}, "anderson"},
	} {
		_, _, err := runFigures(t, tc.args...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s (%v): err = %v, want mention of %q", tc.name, tc.args, err, tc.want)
		}
	}
}

func TestRejectsUnknownPanelAndArgs(t *testing.T) {
	if _, _, err := runFigures(t, "-panel", "no-such-panel"); err == nil {
		t.Error("unknown panel accepted")
	}
	if _, _, err := runFigures(t, "stray-arg"); err == nil {
		t.Error("stray positional argument accepted")
	}
}
