// Command khs-serve runs the latency-model service: an HTTP JSON API over
// the analytical solvers and the parallel sweep engine, with a keyed solve
// cache, admission control, async sweep jobs, request tracing, and
// Prometheus metrics.
//
// Usage:
//
//	khs-serve -addr 127.0.0.1:8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/solve \
//	  -d '{"k":16,"v":2,"lm":32,"h":0.2,"lambda":0.00015}'
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"panel":"fig1-h20"}'
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/v1/version
//
// Every request is traced (send a W3C traceparent header to join your own
// trace; the response echoes ours) and logged as one structured line on
// stderr — text by default, JSON with -log-format json. Kept traces are
// retrievable at /v1/traces/{id} and exported as JSONL via -span-out.
//
// On SIGINT/SIGTERM the server drains: health turns 503, new work is
// refused, running sweep jobs get -drain-timeout to finish (then are
// cancelled), and in-flight HTTP exchanges complete before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kncube/internal/serve"
	"kncube/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "khs-serve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (then drains) or
// the listener fails. ready, when non-nil, receives the bound address once
// the server is accepting — tests use it to hit an ephemeral port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("khs-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		cacheSize    = fs.Int("cache-size", 0, "solve cache entries (0 = default 4096, negative disables retention)")
		maxInflight  = fs.Int("max-inflight", 0, "admitted concurrent solves (0 = 4 x NumCPU)")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-solve deadline cap")
		sweepJobs    = fs.Int("sweep-jobs", 0, "default worker-pool size per sweep job (0 = NumCPU)")
		maxSweeps    = fs.Int("max-sweeps", 2, "concurrently-running sweep jobs before shedding")
		drainTimeout = fs.Duration("drain-timeout", 60*time.Second, "how long shutdown waits for running sweep jobs")
		surfaceDir   = fs.String("surface-dir", "", "persist built latency surfaces here and load them at startup")
		surfaceErr   = fs.Float64("surface-max-error", 0, "auto-mode interpolation error-estimate threshold (0 = default 0.01, negative disables)")
		shardID      = fs.String("shard-id", "", "this replica's name on the consistent-hash surface ring")
		shardPeers   = fs.String("shard-peers", "", "comma-separated ring membership (surface builds for shapes owned elsewhere are refused with 421)")
		logFormat    = fs.String("log-format", "text", "structured log format: text or json")
		spanOut      = fs.String("span-out", "", "append kept traces as JSONL span records to this file")
		traceBuffer  = fs.Int("trace-buffer", 0, "traces retained for GET /v1/traces/{id} (0 = default 256)")
		traceSlow    = fs.Duration("trace-slow", 0, "always keep traces at least this slow (0 = default 250ms, negative disables)")
		traceRatio   = fs.Float64("trace-keep-ratio", 0, "fraction of unremarkable traces kept (0 = keep all, negative = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	logger, err := telemetry.NewLogger(stderr, *logFormat)
	if err != nil {
		return err
	}

	var spanFile *os.File
	var spanSink io.Writer
	if *spanOut != "" {
		f, err := os.Create(*spanOut)
		if err != nil {
			return err
		}
		spanFile, spanSink = f, f
	}

	var peers []string
	for _, p := range strings.Split(*shardPeers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if len(peers) > 0 && *shardID == "" {
		return fmt.Errorf("-shard-peers requires -shard-id (this replica's own ring name)")
	}

	srv := serve.New(serve.Config{
		MaxInflight:        *maxInflight,
		CacheSize:          *cacheSize,
		RequestTimeout:     *reqTimeout,
		SweepJobs:          *sweepJobs,
		MaxActiveSweeps:    *maxSweeps,
		SurfaceDir:         *surfaceDir,
		SurfaceMaxError:    *surfaceErr,
		ShardID:            *shardID,
		ShardPeers:         peers,
		Logger:             logger,
		TraceExport:        spanSink,
		TraceBuffer:        *traceBuffer,
		SlowTraceThreshold: *traceSlow,
		TraceKeepRatio:     *traceRatio,
	})
	if n, err := srv.LoadSurfaces(); err != nil {
		return fmt.Errorf("loading surfaces from %s: %w", *surfaceDir, err)
	} else if n > 0 {
		logger.Info("surfaces loaded", "dir", *surfaceDir, "count", n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("listening on", "addr", ln.Addr().String(), "log_format", *logFormat)
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("draining", "timeout", (*drainTimeout).String())
	//lint:ignore ctxflow the drain deadline must outlive the already-cancelled signal ctx
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		// Jobs were cut short; report it but still close the listener cleanly.
		logger.Warn("drain cut short", "err", err.Error())
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if spanFile != nil {
		if err := spanFile.Close(); err != nil {
			return err
		}
	}
	logger.Info("stopped")
	return nil
}
