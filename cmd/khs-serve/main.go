// Command khs-serve runs the latency-model service: an HTTP JSON API over
// the analytical solvers and the parallel sweep engine, with a keyed solve
// cache, admission control, async sweep jobs, and Prometheus metrics.
//
// Usage:
//
//	khs-serve -addr 127.0.0.1:8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/solve \
//	  -d '{"k":16,"v":2,"lm":32,"h":0.2,"lambda":0.00015}'
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"panel":"fig1-h20"}'
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the server drains: health turns 503, new work is
// refused, running sweep jobs get -drain-timeout to finish (then are
// cancelled), and in-flight HTTP exchanges complete before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kncube/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "khs-serve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (then drains) or
// the listener fails. ready, when non-nil, receives the bound address once
// the server is accepting — tests use it to hit an ephemeral port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("khs-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		cacheSize    = fs.Int("cache-size", 0, "solve cache entries (0 = default 4096, negative disables retention)")
		maxInflight  = fs.Int("max-inflight", 0, "admitted concurrent solves (0 = 4 x NumCPU)")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-solve deadline cap")
		sweepJobs    = fs.Int("sweep-jobs", 0, "default worker-pool size per sweep job (0 = NumCPU)")
		maxSweeps    = fs.Int("max-sweeps", 2, "concurrently-running sweep jobs before shedding")
		drainTimeout = fs.Duration("drain-timeout", 60*time.Second, "how long shutdown waits for running sweep jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv := serve.New(serve.Config{
		MaxInflight:     *maxInflight,
		CacheSize:       *cacheSize,
		RequestTimeout:  *reqTimeout,
		SweepJobs:       *sweepJobs,
		MaxActiveSweeps: *maxSweeps,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(stdout, "khs-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "khs-serve: draining (up to %s)\n", *drainTimeout)
	//lint:ignore ctxflow the drain deadline must outlive the already-cancelled signal ctx
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		// Jobs were cut short; report it but still close the listener cleanly.
		fmt.Fprintf(stderr, "khs-serve: %v\n", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "khs-serve: stopped")
	return nil
}
