package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"kncube/internal/core"
	"kncube/internal/experiments"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a shutdown function that triggers the drain and returns run's
// error along with the structured log written to stderr.
func startDaemon(t *testing.T, args ...string) (baseURL string, shutdown func() (string, error)) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	readyCh := make(chan string, 1)
	errCh := make(chan error, 1)
	var stdout, stderr syncBuilder
	go func() {
		errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...),
			&stdout, &stderr, func(addr string) { readyCh <- addr })
	}()
	select {
	case addr := <-readyCh:
		baseURL = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v\nstderr: %s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	return baseURL, func() (string, error) {
		cancel()
		select {
		case err := <-errCh:
			return stderr.String(), err
		case <-time.After(30 * time.Second):
			return stderr.String(), fmt.Errorf("daemon did not stop")
		}
	}
}

// syncBuilder is a strings.Builder safe for the concurrent writes slog
// performs from handler goroutines while the test reads lifecycle lines.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func postSolve(t *testing.T, baseURL, body string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return resp.StatusCode, fields
}

// TestDaemonEndToEnd drives the real daemon over TCP: health, a solve that
// must match core.Solve bit for bit, a cache hit on repeat visible in
// /metrics, and a graceful drain on context cancellation.
func TestDaemonEndToEnd(t *testing.T) {
	baseURL, shutdown := startDaemon(t)

	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// The Figure-1 h=20% operating point, second load step.
	const body = `{"k":16,"v":2,"lm":32,"h":0.2,"lambda":0.00015}`
	status, fields := postSolve(t, baseURL, body)
	if status != http.StatusOK {
		t.Fatalf("solve status = %d: %v", status, fields)
	}
	var result struct {
		Latency float64 `json:"latency"`
	}
	if err := json.Unmarshal(fields["result"], &result); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	want, err := core.Solve(experiments.DefaultModel,
		core.Spec{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.00015}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(result.Latency) != math.Float64bits(want.Latency) {
		t.Errorf("API latency %v, core.Solve %v — not bit-identical over the wire", result.Latency, want.Latency)
	}

	_, again := postSolve(t, baseURL, body)
	if cache := string(again["cache"]); cache != `"hit"` {
		t.Errorf("repeat solve cache = %s, want \"hit\"", cache)
	}

	mresp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, wantLine := range []string{
		"khs_serve_cache_hits_total 1",
		"khs_serve_cache_misses_total 1",
		`khs_serve_requests_total{code="200",route="POST /v1/solve"} 2`,
	} {
		if !strings.Contains(string(metrics), wantLine) {
			t.Errorf("metrics missing %q", wantLine)
		}
	}

	logOut, err := shutdown()
	if err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for _, wantLine := range []string{"listening on", "draining", "stopped"} {
		if !strings.Contains(logOut, wantLine) {
			t.Errorf("structured log missing %q:\n%s", wantLine, logOut)
		}
	}
	// Every request leaves one access-log line carrying its trace id.
	if !strings.Contains(logOut, "trace_id=") {
		t.Errorf("access log missing trace_id attrs:\n%s", logOut)
	}
}

// TestDaemonBatchSolve drives POST /v1/solve:batch over TCP: per-item
// results must be bit-identical to core.Solve, and per-item failures must
// ride inside a 200 batch answer.
func TestDaemonBatchSolve(t *testing.T) {
	baseURL, shutdown := startDaemon(t)
	defer shutdown()

	body := `{"items":[
		{"k":16,"v":2,"lm":32,"h":0.2,"lambda":0.00015},
		{"k":1,"v":2,"lm":32,"h":0.2,"lambda":0.0001},
		{"k":16,"v":2,"lm":32,"h":0.2,"lambda":0.01}
	]}`
	resp, err := http.Post(baseURL+"/v1/solve:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status = %d: %s", resp.StatusCode, raw)
	}
	var batch struct {
		Model string `json:"model"`
		Items []struct {
			Status string `json:"status"`
			Result *struct {
				Latency float64 `json:"latency"`
			} `json:"result"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(batch.Items))
	}
	want, err := core.Solve(experiments.DefaultModel,
		core.Spec{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.00015}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Items[0].Status != "ok" || batch.Items[0].Result == nil ||
		math.Float64bits(batch.Items[0].Result.Latency) != math.Float64bits(want.Latency) {
		t.Errorf("batch item 0 = %+v, want ok with latency bit-identical to %v", batch.Items[0], want.Latency)
	}
	if batch.Items[1].Status != "invalid" {
		t.Errorf("batch item 1 status = %q, want invalid", batch.Items[1].Status)
	}
	if batch.Items[2].Status != "saturated" {
		t.Errorf("batch item 2 status = %q, want saturated", batch.Items[2].Status)
	}
}

// TestDaemonSweepMatchesCanonicalCSV submits a one-point async sweep over
// TCP and checks the returned point against the first row of the published
// results/fig1-h20.csv.
func TestDaemonSweepMatchesCanonicalCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~1s of simulation")
	}
	baseURL, shutdown := startDaemon(t)
	defer shutdown()

	resp, err := http.Post(baseURL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"panel":"fig1-h20","points":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Points []struct {
			Lambda      float64  `json:"lambda"`
			Model       *float64 `json:"model"`
			Sim         float64  `json:"sim"`
			SimCI       float64  `json:"sim_ci95"`
			SimMeasured int64    `json:"sim_measured"`
		} `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submission = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(120 * time.Second)
	for st.State == "running" {
		if time.Now().After(deadline) {
			t.Fatal("sweep did not finish")
		}
		time.Sleep(100 * time.Millisecond)
		r, err := http.Get(baseURL + "/v1/sweeps/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if st.State != "done" || len(st.Points) != 1 {
		t.Fatalf("final state %q with %d points, want done with 1", st.State, len(st.Points))
	}

	canon, err := os.ReadFile("../../results/fig1-h20.csv")
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(string(canon)), "\n")
	p := st.Points[0]
	if p.Model == nil {
		t.Fatal("first point reports model saturation")
	}
	got := fmt.Sprintf("%.6g,%.4f,%.4f,%.4f,%d", p.Lambda, *p.Model, p.Sim, p.SimCI, p.SimMeasured)
	// Row layout: lambda,model,model_saturated,sim,sim_ci95,sim_saturated,sim_measured
	f := strings.Split(rows[1], ",")
	wantRow := fmt.Sprintf("%s,%s,%s,%s,%s", f[0], f[1], f[3], f[4], f[6])
	if got != wantRow {
		t.Errorf("sweep point %q does not match canonical CSV row %q", got, wantRow)
	}
}
