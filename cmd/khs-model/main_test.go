package main

import (
	"encoding/json"
	"fmt"
	"os"

	"bytes"
	"kncube/internal/telemetry"
	"strconv"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

// The -model flag must compose with -sweep for every registered 2-D-capable
// variant: the historical bug evaluated hotspot-2d regardless of the
// selected model in the sweep and saturation paths.
func TestSweepComposesWithModel(t *testing.T) {
	for _, model := range []string{"hotspot-2d", "bidirectional-2d", "uniform", "ndim"} {
		t.Run(model, func(t *testing.T) {
			out, _, err := runCLI(t,
				"-model", model, "-k", "8", "-lm", "16", "-h", "0.1",
				"-sweep", "2e-4", "-points", "3")
			if model == "uniform" {
				// The baseline rejects H > 0; with -h explicitly set the
				// factory's error must surface, not silently solve hotspot.
				if err == nil {
					t.Fatalf("uniform with -h 0.1 should fail, got output:\n%s", out)
				}
				out, _, err = runCLI(t,
					"-model", model, "-k", "8", "-lm", "16",
					"-sweep", "2e-4", "-points", "3")
			}
			if err != nil {
				t.Fatalf("sweep with -model %s: %v", model, err)
			}
			lines := strings.Split(strings.TrimSpace(out), "\n")
			if len(lines) != 4 {
				t.Fatalf("want header + 3 sweep lines, got %d:\n%s", len(lines), out)
			}
			if lines[0] != "lambda,latency,regular,hot,ws,vbar,iterations" {
				t.Fatalf("unexpected header %q", lines[0])
			}
			for _, ln := range lines[1:] {
				if strings.Contains(ln, "saturated") {
					t.Fatalf("light load saturated unexpectedly: %q", ln)
				}
			}
		})
	}
}

// Different models must actually produce different sweep numbers — guards
// against the selection being ignored.
func TestSweepModelSelectionMatters(t *testing.T) {
	args := []string{"-k", "8", "-lm", "16", "-h", "0.1", "-sweep", "2e-4", "-points", "3"}
	hot, _, err := runCLI(t, append([]string{"-model", "hotspot-2d"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	bi, _, err := runCLI(t, append([]string{"-model", "bidirectional-2d"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	if hot == bi {
		t.Fatalf("hotspot-2d and bidirectional-2d sweeps identical — model flag ignored:\n%s", hot)
	}
}

func TestSaturationComposesWithModel(t *testing.T) {
	rates := map[string]float64{}
	for _, model := range []string{"hotspot-2d", "bidirectional-2d"} {
		out, _, err := runCLI(t,
			"-model", model, "-k", "8", "-lm", "16", "-h", "0.2", "-saturation")
		if err != nil {
			t.Fatalf("saturation with -model %s: %v", model, err)
		}
		if !strings.HasPrefix(out, model+" saturation rate:") {
			t.Fatalf("unexpected output %q", out)
		}
		fields := strings.Fields(strings.TrimSpace(out))
		rate, err := strconv.ParseFloat(fields[len(fields)-2], 64)
		if err != nil || rate <= 0 {
			t.Fatalf("bad rate in %q: %v", out, err)
		}
		rates[model] = rate
	}
	// Bidirectional channels halve path lengths, so the bidirectional model
	// must saturate strictly later than the unidirectional one.
	if rates["bidirectional-2d"] <= rates["hotspot-2d"] {
		t.Fatalf("bidirectional saturation %g should exceed unidirectional %g",
			rates["bidirectional-2d"], rates["hotspot-2d"])
	}
}

func TestDeprecatedAliases(t *testing.T) {
	args := []string{"-k", "8", "-lm", "16", "-h", "0.1", "-lambda", "1e-4"}
	aliased, aliasedErr, err := runCLI(t, append([]string{"-bidirectional"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := runCLI(t, append([]string{"-model", "bidirectional-2d"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	if aliased != direct {
		t.Fatalf("-bidirectional output differs from -model bidirectional-2d:\n%s\nvs\n%s", aliased, direct)
	}
	if !strings.Contains(aliasedErr, "deprecated") {
		t.Fatalf("want deprecation notice on stderr, got %q", aliasedErr)
	}

	// -uniform with no explicit -h defaults the hot-spot fraction to zero.
	out, _, err := runCLI(t, "-uniform", "-k", "8", "-lm", "16", "-lambda", "1e-4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "model             uniform") {
		t.Fatalf("-uniform did not select the uniform model:\n%s", out)
	}
}

// TestAccelFlagBitIdentity: -accel none selects the damped baseline, whose
// arithmetic is exactly the historical iteration — output must be
// bit-identical to not passing the flag at all.
func TestAccelFlagBitIdentity(t *testing.T) {
	args := []string{"-k", "8", "-lm", "16", "-h", "0.2", "-sweep", "4e-4", "-points", "6"}
	base, _, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	none, _, err := runCLI(t, append([]string{"-accel", "none"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	if none != base {
		t.Fatalf("-accel none output differs from the unflagged run:\n%s\nvs\n%s", none, base)
	}
}

// TestAccelFlagReachesSameFixedPoint: the accelerated schemes must agree
// with the damped baseline on every converged sweep point — same fixed
// point, possibly different iteration counts.
func TestAccelFlagReachesSameFixedPoint(t *testing.T) {
	args := []string{"-k", "8", "-lm", "16", "-h", "0.2", "-sweep", "4e-4", "-points", "6"}
	base, _, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	for _, accel := range [][]string{
		{"-accel", "anderson", "-accel-window", "4"},
		{"-accel", "aitken"},
	} {
		out, _, err := runCLI(t, append(accel, args...)...)
		if err != nil {
			t.Fatalf("%v: %v", accel, err)
		}
		baseLines := strings.Split(strings.TrimSpace(base), "\n")
		accLines := strings.Split(strings.TrimSpace(out), "\n")
		if len(accLines) != len(baseLines) {
			t.Fatalf("%v: %d sweep lines vs %d in the baseline", accel, len(accLines), len(baseLines))
		}
		for i := range baseLines[1:] {
			bf := strings.Split(baseLines[i+1], ",")
			af := strings.Split(accLines[i+1], ",")
			if bf[1] == "saturated" || af[1] == "saturated" {
				if bf[1] != af[1] {
					t.Errorf("%v: line %d saturation disagrees: %q vs %q", accel, i+1, accLines[i+1], baseLines[i+1])
				}
				continue
			}
			bl, err1 := strconv.ParseFloat(bf[1], 64)
			al, err2 := strconv.ParseFloat(af[1], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("%v: bad latency fields %q / %q", accel, bf[1], af[1])
			}
			if diff := al - bl; diff < -0.05 || diff > 0.05 {
				t.Errorf("%v: latency %v differs from baseline %v at lambda %s — not the same fixed point",
					accel, al, bl, bf[0])
			}
		}
	}
}

func TestAccelFlagValidation(t *testing.T) {
	point := []string{"-k", "8", "-lm", "16", "-h", "0.1", "-lambda", "1e-4"}
	for _, tc := range []struct {
		name  string
		extra []string
	}{
		{"unknown scheme", []string{"-accel", "psychic"}},
		{"negative window", []string{"-accel", "anderson", "-accel-window", "-1"}},
		{"window without anderson", []string{"-accel-window", "3"}},
	} {
		if _, _, err := runCLI(t, append(tc.extra, point...)...); err == nil {
			t.Errorf("%s (%v) accepted", tc.name, tc.extra)
		}
	}
}

func TestModelAliasConflict(t *testing.T) {
	if _, _, err := runCLI(t, "-uniform", "-model", "hotspot-2d", "-lambda", "1e-4"); err == nil {
		t.Fatal("conflicting -uniform and -model should fail")
	}
	if _, _, err := runCLI(t, "-bidirectional", "-model", "uniform", "-lambda", "1e-4"); err == nil {
		t.Fatal("conflicting -bidirectional and -model should fail")
	}
}

func TestUnknownModel(t *testing.T) {
	_, _, err := runCLI(t, "-model", "no-such-model", "-lambda", "1e-4")
	if err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("want unknown-solver error, got %v", err)
	}
}

// TestTraceOutWritesConvergenceTraces drives every mode with -trace-out and
// checks one JSONL trace per solve appears, with iteration counts matching
// the CSV the sweep mode prints.
func TestTraceOutWritesConvergenceTraces(t *testing.T) {
	dir := t.TempDir()
	out, _, err := runCLI(t,
		"-k", "8", "-lm", "16", "-h", "0.1",
		"-sweep", "2e-4", "-points", "3", "-trace-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := telemetry.NewDirTraceSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
	if len(lines) != 3 {
		t.Fatalf("want 3 sweep lines, got %d", len(lines))
	}
	for i, ln := range lines {
		recs, err := telemetry.ReadConvergenceTrace(
			sink.Path(fmt.Sprintf("sweep-hotspot-2d-lam%02d", i+1)))
		if err != nil {
			t.Fatalf("trace for point %d: %v", i+1, err)
		}
		if len(recs) == 0 {
			t.Fatalf("empty trace for point %d", i+1)
		}
		fields := strings.Split(ln, ",")
		iters, err := strconv.Atoi(fields[len(fields)-1])
		if err != nil {
			t.Fatalf("bad iterations field in %q: %v", ln, err)
		}
		if last := recs[len(recs)-1]; last.Iteration != iters {
			t.Errorf("point %d: trace ends at iteration %d, CSV says %d",
				i+1, last.Iteration, iters)
		}
	}
}

// TestTraceOutSingleAndSaturation covers the point and bisection modes.
func TestTraceOutSingleAndSaturation(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := runCLI(t,
		"-k", "8", "-lm", "16", "-h", "0.1", "-lambda", "1e-4",
		"-trace-out", dir); err != nil {
		t.Fatal(err)
	}
	sink, err := telemetry.NewDirTraceSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sink.Path("point-hotspot-2d")); err != nil {
		t.Errorf("point-mode trace missing: %v", err)
	}

	satDir := t.TempDir()
	if _, _, err := runCLI(t,
		"-k", "8", "-lm", "16", "-h", "0.1", "-saturation",
		"-trace-out", satDir); err != nil {
		t.Fatal(err)
	}
	probes, err := os.ReadDir(satDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) < 2 {
		t.Errorf("bisection wrote %d probe traces, want several", len(probes))
	}
}

// TestMetricsOutFormats checks -metrics-out writes the solve counters in
// both exposition formats, chosen by extension.
func TestMetricsOutFormats(t *testing.T) {
	dir := t.TempDir()
	prom := dir + "/m.prom"
	if _, _, err := runCLI(t,
		"-k", "8", "-lm", "16", "-h", "0.1",
		"-sweep", "2e-4", "-points", "3", "-metrics-out", prom); err != nil {
		t.Fatal(err)
	}
	pb, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`khs_model_solves_total{model="hotspot-2d",outcome="ok"} 3`,
		"khs_model_solve_iterations_count 3",
		"khs_model_solve_residual ",
	} {
		if !strings.Contains(string(pb), want) {
			t.Errorf("Prometheus metrics missing %q:\n%s", want, pb)
		}
	}

	jsonPath := dir + "/m.json"
	if _, _, err := runCLI(t,
		"-k", "8", "-lm", "16", "-h", "0.1", "-lambda", "1e-4",
		"-metrics-out", jsonPath); err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(jb, &snap); err != nil {
		t.Fatalf("-metrics-out .json is not a JSON snapshot: %v", err)
	}
}

// TestProfileFlagsWriteFiles checks -cpuprofile/-memprofile produce
// non-empty pprof files.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	if _, _, err := runCLI(t,
		"-k", "8", "-lm", "16", "-h", "0.1", "-sweep", "2e-4", "-points", "5",
		"-cpuprofile", cpu, "-memprofile", mem); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
