package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

// The -model flag must compose with -sweep for every registered 2-D-capable
// variant: the historical bug evaluated hotspot-2d regardless of the
// selected model in the sweep and saturation paths.
func TestSweepComposesWithModel(t *testing.T) {
	for _, model := range []string{"hotspot-2d", "bidirectional-2d", "uniform", "ndim"} {
		t.Run(model, func(t *testing.T) {
			out, _, err := runCLI(t,
				"-model", model, "-k", "8", "-lm", "16", "-h", "0.1",
				"-sweep", "2e-4", "-points", "3")
			if model == "uniform" {
				// The baseline rejects H > 0; with -h explicitly set the
				// factory's error must surface, not silently solve hotspot.
				if err == nil {
					t.Fatalf("uniform with -h 0.1 should fail, got output:\n%s", out)
				}
				out, _, err = runCLI(t,
					"-model", model, "-k", "8", "-lm", "16",
					"-sweep", "2e-4", "-points", "3")
			}
			if err != nil {
				t.Fatalf("sweep with -model %s: %v", model, err)
			}
			lines := strings.Split(strings.TrimSpace(out), "\n")
			if len(lines) != 4 {
				t.Fatalf("want header + 3 sweep lines, got %d:\n%s", len(lines), out)
			}
			if lines[0] != "lambda,latency,regular,hot,ws,vbar,iterations" {
				t.Fatalf("unexpected header %q", lines[0])
			}
			for _, ln := range lines[1:] {
				if strings.Contains(ln, "saturated") {
					t.Fatalf("light load saturated unexpectedly: %q", ln)
				}
			}
		})
	}
}

// Different models must actually produce different sweep numbers — guards
// against the selection being ignored.
func TestSweepModelSelectionMatters(t *testing.T) {
	args := []string{"-k", "8", "-lm", "16", "-h", "0.1", "-sweep", "2e-4", "-points", "3"}
	hot, _, err := runCLI(t, append([]string{"-model", "hotspot-2d"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	bi, _, err := runCLI(t, append([]string{"-model", "bidirectional-2d"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	if hot == bi {
		t.Fatalf("hotspot-2d and bidirectional-2d sweeps identical — model flag ignored:\n%s", hot)
	}
}

func TestSaturationComposesWithModel(t *testing.T) {
	rates := map[string]float64{}
	for _, model := range []string{"hotspot-2d", "bidirectional-2d"} {
		out, _, err := runCLI(t,
			"-model", model, "-k", "8", "-lm", "16", "-h", "0.2", "-saturation")
		if err != nil {
			t.Fatalf("saturation with -model %s: %v", model, err)
		}
		if !strings.HasPrefix(out, model+" saturation rate:") {
			t.Fatalf("unexpected output %q", out)
		}
		fields := strings.Fields(strings.TrimSpace(out))
		rate, err := strconv.ParseFloat(fields[len(fields)-2], 64)
		if err != nil || rate <= 0 {
			t.Fatalf("bad rate in %q: %v", out, err)
		}
		rates[model] = rate
	}
	// Bidirectional channels halve path lengths, so the bidirectional model
	// must saturate strictly later than the unidirectional one.
	if rates["bidirectional-2d"] <= rates["hotspot-2d"] {
		t.Fatalf("bidirectional saturation %g should exceed unidirectional %g",
			rates["bidirectional-2d"], rates["hotspot-2d"])
	}
}

func TestDeprecatedAliases(t *testing.T) {
	args := []string{"-k", "8", "-lm", "16", "-h", "0.1", "-lambda", "1e-4"}
	aliased, aliasedErr, err := runCLI(t, append([]string{"-bidirectional"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := runCLI(t, append([]string{"-model", "bidirectional-2d"}, args...)...)
	if err != nil {
		t.Fatal(err)
	}
	if aliased != direct {
		t.Fatalf("-bidirectional output differs from -model bidirectional-2d:\n%s\nvs\n%s", aliased, direct)
	}
	if !strings.Contains(aliasedErr, "deprecated") {
		t.Fatalf("want deprecation notice on stderr, got %q", aliasedErr)
	}

	// -uniform with no explicit -h defaults the hot-spot fraction to zero.
	out, _, err := runCLI(t, "-uniform", "-k", "8", "-lm", "16", "-lambda", "1e-4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "model             uniform") {
		t.Fatalf("-uniform did not select the uniform model:\n%s", out)
	}
}

func TestModelAliasConflict(t *testing.T) {
	if _, _, err := runCLI(t, "-uniform", "-model", "hotspot-2d", "-lambda", "1e-4"); err == nil {
		t.Fatal("conflicting -uniform and -model should fail")
	}
	if _, _, err := runCLI(t, "-bidirectional", "-model", "uniform", "-lambda", "1e-4"); err == nil {
		t.Fatal("conflicting -bidirectional and -model should fail")
	}
}

func TestUnknownModel(t *testing.T) {
	_, _, err := runCLI(t, "-model", "no-such-model", "-lambda", "1e-4")
	if err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("want unknown-solver error, got %v", err)
	}
}
