// Command khs-model evaluates the analytical hot-spot latency model of
// Loucif, Ould-Khaoua, Min (IPDPS 2005) for a k-ary 2-cube.
//
// Usage:
//
//	khs-model -k 16 -v 2 -lm 32 -h 0.2 -lambda 0.0002
//	khs-model -k 16 -v 2 -lm 32 -h 0.2 -sweep 0.0006 -points 12
//	khs-model -k 16 -v 2 -lm 32 -h 0.2 -saturation
package main

import (
	"flag"
	"fmt"
	"os"

	"kncube"
)

func main() {
	var (
		k       = flag.Int("k", 16, "radix (N = k*k nodes)")
		v       = flag.Int("v", 2, "virtual channels per physical channel")
		lm      = flag.Int("lm", 32, "message length in flits")
		h       = flag.Float64("h", 0.2, "hot-spot fraction in [0,1)")
		lambda  = flag.Float64("lambda", 1e-4, "generation rate, messages/node/cycle")
		sweep   = flag.Float64("sweep", 0, "sweep lambda from 0 to this value instead of a single point")
		points  = flag.Int("points", 10, "number of sweep points")
		sat     = flag.Bool("saturation", false, "locate the saturation rate by bisection")
		uniform = flag.Bool("uniform", false, "also evaluate the uniform-traffic baseline")
		worst   = flag.Bool("worst-case-entrance", false, "use the worst-case entrance policy (ablation A)")
		paperB  = flag.Bool("paper-blocking", false, "use the per-VC M/G/1 blocking form of Eq. 26 (ablation B)")
		bi      = flag.Bool("bidirectional", false, "evaluate the bidirectional-channel extension")
	)
	flag.Parse()

	opts := kncube.ModelOptions{}
	if *worst {
		opts.Entrance = kncube.EntranceWorstCase
	}
	if *paperB {
		opts.Blocking = kncube.BlockingPaper
	}
	params := func(lam float64) kncube.ModelParams {
		return kncube.ModelParams{K: *k, V: *v, Lm: *lm, H: *h, Lambda: lam}
	}

	if *bi {
		r, err := kncube.SolveBidirectionalModel(params(*lambda), opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bidirectional torus, mean latency %10.2f cycles\n", r.Latency)
		fmt.Printf("  regular %10.2f, hot-spot %10.2f, source wait %.2f\n",
			r.Regular, r.Hot, r.WsRegular)
		fmt.Printf("  mean path %.2f hops, Vx=%.3f Vhy=%.3f, %d iterations\n",
			r.MeanDistance, r.VX, r.VHy, r.Iterations)
		return
	}

	switch {
	case *sat:
		rate, err := kncube.SaturationLambda(func(lam float64) error {
			_, err := kncube.SolveModel(params(lam), opts)
			return err
		}, 1e-8, 0, 1e-4)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("saturation rate: %.6g messages/node/cycle\n", rate)
	case *sweep > 0:
		fmt.Println("lambda,latency,regular,hot,ws,vx,vhy,max_util")
		for i := 1; i <= *points; i++ {
			lam := *sweep * float64(i) / float64(*points)
			r, err := kncube.SolveModel(params(lam), opts)
			if err != nil {
				fmt.Printf("%.6g,saturated,,,,,,\n", lam)
				continue
			}
			fmt.Printf("%.6g,%.2f,%.2f,%.2f,%.2f,%.3f,%.3f,%.3f\n",
				lam, r.Latency, r.Regular, r.Hot, r.WsRegular, r.VX, r.VHy, r.MaxUtilisation)
		}
	default:
		r, err := kncube.SolveModel(params(*lambda), opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mean latency      %10.2f cycles\n", r.Latency)
		fmt.Printf("  regular         %10.2f cycles\n", r.Regular)
		fmt.Printf("  hot-spot        %10.2f cycles\n", r.Hot)
		fmt.Printf("source waiting    %10.2f cycles\n", r.WsRegular)
		fmt.Printf("multiplexing      Vx=%.3f Vhy=%.3f Vhybar=%.3f\n", r.VX, r.VHy, r.VHyBar)
		fmt.Printf("max channel util  %10.3f\n", r.MaxUtilisation)
		fmt.Printf("iterations        %10d\n", r.Iterations)
	}

	if *uniform {
		u, err := kncube.SolveUniform(kncube.UniformParams{
			K: *k, Dims: 2, V: *v, Lm: *lm, Lambda: *lambda,
		})
		if err != nil {
			fatal(fmt.Errorf("uniform baseline: %w", err))
		}
		fmt.Printf("uniform baseline  %10.2f cycles (network %.2f, V̄ %.3f)\n",
			u.Latency, u.Network, u.Multiplexing)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "khs-model:", err)
	os.Exit(1)
}
