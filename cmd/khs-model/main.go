// Command khs-model evaluates the analytical hot-spot latency models of
// Loucif, Ould-Khaoua, Min (IPDPS 2005) for k-ary n-cubes.
//
// The -model flag selects any registered model variant (hotspot-2d,
// bidirectional-2d, uniform, hypercube, ndim) and composes with every mode:
// a single point (default), -sweep, and -saturation.
//
// Usage:
//
//	khs-model -k 16 -v 2 -lm 32 -h 0.2 -lambda 0.0002
//	khs-model -model bidirectional-2d -k 16 -h 0.2 -sweep 0.0006 -points 12
//	khs-model -model uniform -k 16 -saturation
//	khs-model -model hypercube -k 2 -n 10 -h 0.1 -lambda 0.001
//	khs-model -k 16 -h 0.2 -sweep 0.0006 -accel anderson -accel-window 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kncube"
	"kncube/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "khs-model:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("khs-model", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		model  = fs.String("model", "", "model variant: "+strings.Join(kncube.Models(), ", ")+" (default hotspot-2d)")
		k      = fs.Int("k", 16, "radix (0 = the variant's default)")
		n      = fs.Int("n", 2, "dimensions (used by hypercube/ndim; the 2-D variants require 2)")
		v      = fs.Int("v", 2, "virtual channels per physical channel")
		lm     = fs.Int("lm", 32, "message length in flits")
		h      = fs.Float64("h", 0.2, "hot-spot fraction in [0,1)")
		lambda = fs.Float64("lambda", 1e-4, "generation rate, messages/node/cycle")
		sweep  = fs.Float64("sweep", 0, "sweep lambda from 0 to this value instead of a single point")
		points = fs.Int("points", 10, "number of sweep points")
		sat    = fs.Bool("saturation", false, "locate the saturation rate by bisection")
		worst  = fs.Bool("worst-case-entrance", false, "use the worst-case entrance policy (ablation A)")
		paperB = fs.Bool("paper-blocking", false, "use the per-VC M/G/1 blocking form of Eq. 26 (ablation B)")
		// Fixed-point iteration knobs (DESIGN.md §10). "none" keeps the
		// damped baseline bit-identical to an unset flag.
		accel    = fs.String("accel", "none", "fixed-point acceleration scheme: none, anderson, aitken")
		accelWin = fs.Int("accel-window", 0, "Anderson mixing window, past residual differences combined per round (0 = solver default; requires -accel anderson)")
		// Observability (DESIGN.md §7).
		logFormat  = fs.String("log-format", "text", "structured log format for diagnostics: text or json")
		traceOut   = fs.String("trace-out", "", "directory for per-solve convergence traces (one JSONL file per solve)")
		metricsOut = fs.String("metrics-out", "", "write solver metrics to this file (.json = JSON snapshot, anything else = Prometheus text)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file")
		// Deprecated aliases, kept for compatibility with pre-registry
		// invocations.
		bi      = fs.Bool("bidirectional", false, "deprecated: alias for -model bidirectional-2d")
		uniform = fs.Bool("uniform", false, "deprecated: alias for -model uniform")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := telemetry.NewLogger(stderr, *logFormat)
	if err != nil {
		return err
	}

	name := *model
	if *bi {
		if name != "" && name != "bidirectional-2d" {
			return fmt.Errorf("-bidirectional conflicts with -model %s", name)
		}
		name = "bidirectional-2d"
		logger.Warn("-bidirectional is deprecated; use -model bidirectional-2d")
	}
	if *uniform {
		if name != "" && name != "uniform" {
			return fmt.Errorf("-uniform conflicts with -model %s", name)
		}
		name = "uniform"
		logger.Warn("-uniform is deprecated; use -model uniform")
	}
	if name == "" {
		name = "hotspot-2d"
	}

	// Flags the user did not set explicitly bend to the variant's natural
	// defaults: the uniform baseline has no hot-spot class, and the
	// hypercube is the 2-ary n-cube.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if name == "uniform" && !explicit["h"] {
		*h = 0
	}
	if name == "hypercube" && !explicit["k"] {
		*k = 2
	}

	opts := kncube.ModelOptions{}
	if *worst {
		opts.Entrance = kncube.EntranceWorstCase
	}
	if *paperB {
		opts.Blocking = kncube.BlockingPaper
	}
	scheme, err := kncube.ParseAcceleration(*accel)
	if err != nil {
		return fmt.Errorf("-accel: %w", err)
	}
	if *accelWin < 0 {
		return fmt.Errorf("-accel-window must be non-negative, got %d", *accelWin)
	}
	if *accelWin > 0 && scheme != kncube.AccelAnderson {
		return fmt.Errorf("-accel-window is only meaningful with -accel anderson")
	}
	opts.FixPoint.Acceleration = scheme
	opts.FixPoint.Window = *accelWin
	spec := func(lam float64) kncube.ModelSpec {
		return kncube.ModelSpec{K: *k, Dims: *n, V: *v, Lm: *lm, H: *h, Lambda: lam}
	}

	var sink *telemetry.DirTraceSink
	if *traceOut != "" {
		var err error
		if sink, err = telemetry.NewDirTraceSink(*traceOut); err != nil {
			return err
		}
	}
	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
	}
	stopProf, err := telemetry.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if reg != nil {
			if werr := reg.WriteFile(*metricsOut); werr != nil && retErr == nil {
				retErr = werr
			}
		}
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	// solve wraps kncube.Solve with the observability hooks: a convergence
	// trace per solve (when -trace-out is set) and khs_model_* metrics
	// (when -metrics-out is set).
	solve := func(label string, lam float64) (*kncube.SolveResult, error) {
		o := opts
		var done func() error
		if sink != nil {
			var hook func(kncube.TraceRecord)
			hook, done = sink.Solve(label)
			prev := o.FixPoint.Trace
			o.FixPoint.Trace = func(tr kncube.TraceRecord) {
				if prev != nil {
					prev(tr)
				}
				hook(tr)
			}
		}
		r, err := kncube.Solve(name, spec(lam), o)
		if done != nil {
			if terr := done(); terr != nil && err == nil {
				err = terr
			}
		}
		if reg != nil {
			outcome := "ok"
			switch {
			case errors.Is(err, kncube.ErrSaturated):
				outcome = "saturated"
			case err != nil:
				outcome = "error"
			}
			reg.Counter("khs_model_solves_total", "analytical solves by outcome",
				telemetry.Labels{"model": name, "outcome": outcome}).Inc()
			if r != nil {
				reg.Histogram("khs_model_solve_iterations", "fixed-point iterations per converged solve",
					nil, telemetry.ExponentialBuckets(1, 2, 12)).
					Observe(float64(r.Convergence.Iterations))
				reg.Gauge("khs_model_solve_residual", "final residual of the last converged solve", nil).
					Set(r.Convergence.Residual)
			}
		}
		return r, err
	}

	switch {
	case *sat:
		probe := 0
		rate, err := kncube.SaturationLambda(func(lam float64) error {
			probe++
			_, err := solve(fmt.Sprintf("sat-%s-probe%03d", name, probe), lam)
			return err
		}, 1e-8, 0, 1e-4)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s saturation rate: %.6g messages/node/cycle\n", name, rate)
	case *sweep > 0:
		fmt.Fprintln(stdout, "lambda,latency,regular,hot,ws,vbar,iterations")
		for i := 1; i <= *points; i++ {
			lam := *sweep * float64(i) / float64(*points)
			r, err := solve(fmt.Sprintf("sweep-%s-lam%02d", name, i), lam)
			if errors.Is(err, kncube.ErrSaturated) {
				fmt.Fprintf(stdout, "%.6g,saturated,,,,,\n", lam)
				continue
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%.6g,%.2f,%.2f,%.2f,%.2f,%.3f,%d\n",
				lam, r.Latency, r.Regular, r.Hot, r.SourceWait, r.VBar, r.Convergence.Iterations)
		}
	default:
		r, err := solve(fmt.Sprintf("point-%s", name), *lambda)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "model             %s\n", name)
		fmt.Fprintf(stdout, "mean latency      %10.2f cycles\n", r.Latency)
		fmt.Fprintf(stdout, "  regular         %10.2f cycles\n", r.Regular)
		fmt.Fprintf(stdout, "  hot-spot        %10.2f cycles\n", r.Hot)
		fmt.Fprintf(stdout, "source waiting    %10.2f cycles\n", r.SourceWait)
		fmt.Fprintf(stdout, "multiplexing      V̄=%.3f\n", r.VBar)
		fmt.Fprintf(stdout, "convergence       %d iterations, residual %.3g\n",
			r.Convergence.Iterations, r.Convergence.Residual)
		switch d := r.Detail.(type) {
		case *kncube.ModelResult:
			fmt.Fprintf(stdout, "detail            Vx=%.3f Vhy=%.3f Vhybar=%.3f, max util %.3f\n",
				d.VX, d.VHy, d.VHyBar, d.MaxUtilisation)
		case *kncube.BiModelResult:
			fmt.Fprintf(stdout, "detail            Vx=%.3f Vhy=%.3f, mean path %.2f hops\n",
				d.VX, d.VHy, d.MeanDistance)
		case *kncube.UniformResult:
			fmt.Fprintf(stdout, "detail            network %.2f cycles, channel rate %.6g\n",
				d.Network, d.ChannelRate)
		}
	}
	return nil
}
